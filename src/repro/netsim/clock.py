"""Virtual time for the simulator.

All components share one :class:`SimClock`; nothing in the simulation
reads wall-clock time, which keeps campaigns deterministic and fast.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing virtual clock, in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; negative steps are a programming error."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time, which must not be in the past."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
