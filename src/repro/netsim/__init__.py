"""Network simulation substrate: virtual time, geography, latency, anycast."""

from .addressing import Ipv4Allocator, Ipv6Allocator
from .anycast import AnycastGroup, AnycastSite
from .clock import SimClock
from .events import EventScheduler
from .geo import (
    ATLAS_CONTINENT_WEIGHTS,
    DATACENTERS,
    PROBE_CITIES,
    Continent,
    GeoPoint,
    Location,
    cities_by_continent,
    great_circle_km,
)
from .latency import FIBER_KM_PER_SECOND, LatencyModel, LatencyParameters
from .network import DeliveryError, RoundTrip, SimNetwork, UnicastHost

__all__ = [
    "ATLAS_CONTINENT_WEIGHTS",
    "AnycastGroup",
    "AnycastSite",
    "Continent",
    "DATACENTERS",
    "DeliveryError",
    "EventScheduler",
    "FIBER_KM_PER_SECOND",
    "GeoPoint",
    "Ipv4Allocator",
    "Ipv6Allocator",
    "LatencyModel",
    "LatencyParameters",
    "Location",
    "PROBE_CITIES",
    "RoundTrip",
    "SimClock",
    "SimNetwork",
    "UnicastHost",
    "cities_by_continent",
    "great_circle_km",
]
