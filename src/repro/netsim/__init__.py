"""Network simulation substrate: virtual time, geography, latency, anycast."""

from .addressing import Ipv4Allocator, Ipv6Allocator
from .anycast import AnycastGroup, AnycastSite
from .clock import SimClock
from .events import EventScheduler
from .sched import EventKernel
from .geo import (
    ATLAS_CONTINENT_WEIGHTS,
    DATACENTERS,
    PROBE_CITIES,
    Continent,
    GeoPoint,
    Location,
    cities_by_continent,
    great_circle_km,
)
from .faults import (
    BUILTIN_SCENARIOS,
    ActiveFaults,
    Brownout,
    FaultEvent,
    FaultPlan,
    LatencySpike,
    LossRate,
    NsOutage,
    Scenario,
    ScenarioError,
    SiteWithdrawal,
    builtin_scenario,
    load_scenario,
    resolve_scenario,
)
from .latency import FIBER_KM_PER_SECOND, LatencyModel, LatencyParameters
from .network import DeliveryError, RoundTrip, SimNetwork, UnicastHost

__all__ = [
    "ATLAS_CONTINENT_WEIGHTS",
    "ActiveFaults",
    "AnycastGroup",
    "AnycastSite",
    "BUILTIN_SCENARIOS",
    "Brownout",
    "Continent",
    "DATACENTERS",
    "DeliveryError",
    "EventKernel",
    "EventScheduler",
    "FaultEvent",
    "FaultPlan",
    "FIBER_KM_PER_SECOND",
    "GeoPoint",
    "Ipv4Allocator",
    "Ipv6Allocator",
    "LatencyModel",
    "LatencyParameters",
    "LatencySpike",
    "Location",
    "LossRate",
    "NsOutage",
    "PROBE_CITIES",
    "RoundTrip",
    "Scenario",
    "ScenarioError",
    "SimClock",
    "SimNetwork",
    "SiteWithdrawal",
    "UnicastHost",
    "builtin_scenario",
    "cities_by_continent",
    "great_circle_km",
    "load_scenario",
    "resolve_scenario",
]
