"""Geography: coordinates, great-circle distance, datacenters, probe cities.

The paper's experiment deploys authoritatives in AWS datacenters named by
airport code and groups RIPE Atlas vantage points by continent; this
module provides both location sets.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

EARTH_RADIUS_KM = 6371.0


class Continent(str, enum.Enum):
    """Continent codes as used in the paper's Table 2 and Figure 4."""

    AF = "AF"
    AS = "AS"
    EU = "EU"
    NA = "NA"
    OC = "OC"
    SA = "SA"

    def __str__(self) -> str:  # keep table rendering terse
        return self.value


@dataclass(frozen=True)
class GeoPoint:
    """A position on the globe in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self):
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat} out of range")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon} out of range")


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Haversine great-circle distance in kilometers."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


@dataclass(frozen=True)
class Location:
    """A named place: datacenter site or probe city."""

    code: str
    city: str
    country: str
    continent: Continent
    point: GeoPoint

    def distance_km(self, other: "Location") -> float:
        return great_circle_km(self.point, other.point)


def _loc(code, city, country, continent, lat, lon) -> Location:
    return Location(code, city, country, Continent(continent), GeoPoint(lat, lon))


# The seven AWS datacenters of the paper's Table 1, by airport code.
DATACENTERS: dict[str, Location] = {
    loc.code: loc
    for loc in [
        _loc("GRU", "São Paulo", "BR", "SA", -23.43, -46.47),
        _loc("NRT", "Tokyo", "JP", "AS", 35.76, 140.39),
        _loc("DUB", "Dublin", "IE", "EU", 53.42, -6.27),
        _loc("FRA", "Frankfurt", "DE", "EU", 50.03, 8.57),
        _loc("SYD", "Sydney", "AU", "OC", -33.95, 151.18),
        _loc("IAD", "Washington", "US", "NA", 38.95, -77.45),
        _loc("SFO", "San Francisco", "US", "NA", 37.62, -122.38),
    ]
}


# Cities probes can live in.  Codes are IATA-like and only need to be
# unique within this table.
PROBE_CITIES: dict[str, Location] = {
    loc.code: loc
    for loc in [
        # Europe — deliberately the longest list: RIPE Atlas is EU-heavy.
        _loc("AMS", "Amsterdam", "NL", "EU", 52.37, 4.89),
        _loc("LON", "London", "GB", "EU", 51.51, -0.13),
        _loc("PAR", "Paris", "FR", "EU", 48.86, 2.35),
        _loc("BER", "Berlin", "DE", "EU", 52.52, 13.40),
        _loc("MAD", "Madrid", "ES", "EU", 40.42, -3.70),
        _loc("ROM", "Rome", "IT", "EU", 41.90, 12.50),
        _loc("STO", "Stockholm", "SE", "EU", 59.33, 18.07),
        _loc("WAW", "Warsaw", "PL", "EU", 52.23, 21.01),
        _loc("VIE", "Vienna", "AT", "EU", 48.21, 16.37),
        _loc("ZRH", "Zurich", "CH", "EU", 47.38, 8.54),
        _loc("PRG", "Prague", "CZ", "EU", 50.08, 14.44),
        _loc("HEL", "Helsinki", "FI", "EU", 60.17, 24.94),
        _loc("OSL", "Oslo", "NO", "EU", 59.91, 10.75),
        _loc("CPH", "Copenhagen", "DK", "EU", 55.68, 12.57),
        _loc("LIS", "Lisbon", "PT", "EU", 38.72, -9.14),
        _loc("ATH", "Athens", "GR", "EU", 37.98, 23.73),
        _loc("BUD", "Budapest", "HU", "EU", 47.50, 19.04),
        _loc("BRU", "Brussels", "BE", "EU", 50.85, 4.35),
        _loc("DUBC", "Dublin", "IE", "EU", 53.35, -6.26),
        _loc("FRAC", "Frankfurt", "DE", "EU", 50.11, 8.68),
        _loc("MOW", "Moscow", "RU", "EU", 55.76, 37.62),
        _loc("KBP", "Kyiv", "UA", "EU", 50.45, 30.52),
        _loc("BUH", "Bucharest", "RO", "EU", 44.43, 26.10),
        _loc("SOF", "Sofia", "BG", "EU", 42.70, 23.32),
        _loc("ZAG", "Zagreb", "HR", "EU", 45.81, 15.98),
        # North America.
        _loc("NYC", "New York", "US", "NA", 40.71, -74.01),
        _loc("LAX", "Los Angeles", "US", "NA", 34.05, -118.24),
        _loc("CHI", "Chicago", "US", "NA", 41.88, -87.63),
        _loc("YYZ", "Toronto", "CA", "NA", 43.65, -79.38),
        _loc("YVR", "Vancouver", "CA", "NA", 49.28, -123.12),
        _loc("MEX", "Mexico City", "MX", "NA", 19.43, -99.13),
        _loc("DFW", "Dallas", "US", "NA", 32.78, -96.80),
        _loc("SEA", "Seattle", "US", "NA", 47.61, -122.33),
        _loc("MIA", "Miami", "US", "NA", 25.76, -80.19),
        _loc("YUL", "Montreal", "CA", "NA", 45.50, -73.57),
        _loc("ATL", "Atlanta", "US", "NA", 33.75, -84.39),
        _loc("DEN", "Denver", "US", "NA", 39.74, -104.99),
        # Asia.
        _loc("TYO", "Tokyo", "JP", "AS", 35.68, 139.69),
        _loc("SIN", "Singapore", "SG", "AS", 1.35, 103.82),
        _loc("HKG", "Hong Kong", "HK", "AS", 22.32, 114.17),
        _loc("BOM", "Mumbai", "IN", "AS", 19.08, 72.88),
        _loc("DEL", "Delhi", "IN", "AS", 28.61, 77.21),
        _loc("SEL", "Seoul", "KR", "AS", 37.57, 126.98),
        _loc("BJS", "Beijing", "CN", "AS", 39.90, 116.41),
        _loc("SHA", "Shanghai", "CN", "AS", 31.23, 121.47),
        _loc("BKK", "Bangkok", "TH", "AS", 13.76, 100.50),
        _loc("JKT", "Jakarta", "ID", "AS", -6.21, 106.85),
        _loc("TPE", "Taipei", "TW", "AS", 25.03, 121.57),
        _loc("TLV", "Tel Aviv", "IL", "AS", 32.09, 34.78),
        _loc("DXB", "Dubai", "AE", "AS", 25.20, 55.27),
        _loc("IST", "Istanbul", "TR", "AS", 41.01, 28.98),
        _loc("MNL", "Manila", "PH", "AS", 14.60, 120.98),
        # South America.
        _loc("SAO", "São Paulo", "BR", "SA", -23.55, -46.63),
        _loc("BUE", "Buenos Aires", "AR", "SA", -34.60, -58.38),
        _loc("SCL", "Santiago", "CL", "SA", -33.45, -70.67),
        _loc("LIM", "Lima", "PE", "SA", -12.05, -77.04),
        _loc("BOG", "Bogotá", "CO", "SA", 4.71, -74.07),
        _loc("RIO", "Rio de Janeiro", "BR", "SA", -22.91, -43.17),
        _loc("MVD", "Montevideo", "UY", "SA", -34.90, -56.19),
        # Oceania.
        _loc("SYDC", "Sydney", "AU", "OC", -33.87, 151.21),
        _loc("MEL", "Melbourne", "AU", "OC", -37.81, 144.96),
        _loc("AKL", "Auckland", "NZ", "OC", -36.85, 174.76),
        _loc("BNE", "Brisbane", "AU", "OC", -27.47, 153.03),
        _loc("PER", "Perth", "AU", "OC", -31.95, 115.86),
        _loc("WLG", "Wellington", "NZ", "OC", -41.29, 174.78),
        # Africa.
        _loc("JNB", "Johannesburg", "ZA", "AF", -26.20, 28.05),
        _loc("CAI", "Cairo", "EG", "AF", 30.04, 31.24),
        _loc("LOS", "Lagos", "NG", "AF", 6.52, 3.38),
        _loc("NBO", "Nairobi", "KE", "AF", -1.29, 36.82),
        _loc("CMN", "Casablanca", "MA", "AF", 33.57, -7.59),
        _loc("ACC", "Accra", "GH", "AF", 5.60, -0.19),
        _loc("TUN", "Tunis", "TN", "AF", 36.81, 10.18),
        _loc("CPT", "Cape Town", "ZA", "AF", -33.92, 18.42),
    ]
}


def cities_by_continent(continent: Continent) -> list[Location]:
    return [loc for loc in PROBE_CITIES.values() if loc.continent == continent]


# RIPE Atlas probe density by continent — heavily Europe-skewed, matching
# the paper's §3.1 observation and prior Atlas studies [4, 5].  Rough
# shares derived from the VP counts in Figure 5 (2B: EU 6221, NA 1181,
# AS 692, OC 245, AF 215, SA 131 of 8685 total).
ATLAS_CONTINENT_WEIGHTS: dict[Continent, float] = {
    Continent.EU: 0.716,
    Continent.NA: 0.136,
    Continent.AS: 0.080,
    Continent.OC: 0.028,
    Continent.AF: 0.025,
    Continent.SA: 0.015,
}
