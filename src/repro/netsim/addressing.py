"""IPv4/IPv6 address allocation for simulated hosts.

Allocators hand out documentation-range addresses (TEST-NET and 2001:db8)
first, then fall back to sequentially carved space, so simulated traces
look plausible and never collide.
"""

from __future__ import annotations

import ipaddress


class Ipv4Allocator:
    """Sequential allocator over one or more IPv4 networks."""

    def __init__(self, networks: list[str] | None = None):
        if networks is None:
            networks = ["10.0.0.0/8"]
        self._networks = [ipaddress.IPv4Network(net) for net in networks]
        self._net_index = 0
        self._offset = 1  # skip the network address
        self._allocated: set[str] = set()

    def allocate(self) -> str:
        while self._net_index < len(self._networks):
            network = self._networks[self._net_index]
            if self._offset < network.num_addresses - 1:
                address = str(network[self._offset])
                self._offset += 1
                self._allocated.add(address)
                return address
            self._net_index += 1
            self._offset = 1
        raise RuntimeError("address space exhausted")

    def allocate_many(self, count: int) -> list[str]:
        return [self.allocate() for _ in range(count)]

    @property
    def allocated(self) -> frozenset[str]:
        return frozenset(self._allocated)


class Ipv6Allocator:
    """Sequential allocator over an IPv6 prefix."""

    def __init__(self, network: str = "2001:db8::/32"):
        self._network = ipaddress.IPv6Network(network)
        self._offset = 1
        self._allocated: set[str] = set()

    def allocate(self) -> str:
        if self._offset >= self._network.num_addresses - 1:
            raise RuntimeError("address space exhausted")
        address = str(self._network[self._offset])
        self._offset += 1
        self._allocated.add(address)
        return address

    @property
    def allocated(self) -> frozenset[str]:
        return frozenset(self._allocated)
