"""Telemetry-counting facade over the discrete-event kernel.

The heap, ordering, and cancellation semantics live in
:class:`~repro.netsim.sched.EventKernel`; this subclass keeps the
historical :class:`EventScheduler` surface (``schedule_at`` /
``schedule_in``) and adds per-event metrics when a telemetry bundle is
attached — the right tool for instrumented, human-scale runs, while the
bare kernel is what campaign hot loops drive.
"""

from __future__ import annotations

from typing import Callable

from ..telemetry import NULL_TELEMETRY
from .clock import SimClock
from .sched import EventKernel


class EventScheduler(EventKernel):
    """Priority-queue event loop over virtual time.

    Events scheduled for the same instant run in scheduling order, which
    keeps campaign runs reproducible.
    """

    __slots__ = ("telemetry",)

    def __init__(self, clock: SimClock | None = None, telemetry=None):
        super().__init__(clock=clock)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    def schedule_at(self, timestamp: float, callback: Callable[[], None]) -> list:
        """Run ``callback`` at an absolute virtual time."""
        return self.call_at(timestamp, callback)

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> list:
        """Run ``callback`` after a relative delay."""
        return self.call_later(delay, callback)

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        if not super().step():
            return False
        telemetry = self.telemetry
        if telemetry.enabled:
            registry = telemetry.registry
            registry.counter(
                "sim_events_processed_total",
                "discrete events executed by the scheduler",
            ).inc()
            registry.gauge(
                "sim_events_pending", "events waiting in the scheduler queue"
            ).set(self.pending)
        return True

    def run_until(self, timestamp: float) -> int:
        """Process every event with time <= ``timestamp``, then jump there.

        Routed through :meth:`step` so the per-event telemetry counters
        fire; the bare kernel's inlined loop skips them by design.
        """
        executed = 0
        heap = self._heap
        while heap:
            head = heap[0]
            if head[0] > timestamp:
                break
            if self.step():
                executed += 1
        if timestamp > self.clock.now:
            self.clock.advance_to(timestamp)
        return executed

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count


__all__ = ["EventScheduler"]
