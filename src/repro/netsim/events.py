"""A small discrete-event engine driving the shared :class:`SimClock`."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..telemetry import NULL_TELEMETRY
from .clock import SimClock


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventScheduler:
    """Priority-queue event loop over virtual time.

    Events scheduled for the same instant run in scheduling order, which
    keeps campaign runs reproducible.
    """

    def __init__(self, clock: SimClock | None = None, telemetry=None):
        self.clock = clock if clock is not None else SimClock()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._queue: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def pending(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def processed(self) -> int:
        return self._processed

    def schedule_at(self, timestamp: float, callback: Callable[[], None]) -> _ScheduledEvent:
        """Run ``callback`` at an absolute virtual time."""
        if timestamp < self.clock.now:
            raise ValueError(
                f"cannot schedule at {timestamp} before now {self.clock.now}"
            )
        event = _ScheduledEvent(timestamp, next(self._counter), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> _ScheduledEvent:
        """Run ``callback`` after a relative delay."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.clock.now + delay, callback)

    def cancel(self, event: _ScheduledEvent) -> None:
        event.cancelled = True

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            self._processed += 1
            telemetry = self.telemetry
            if telemetry.enabled:
                registry = telemetry.registry
                registry.counter(
                    "sim_events_processed_total",
                    "discrete events executed by the scheduler",
                ).inc()
                registry.gauge(
                    "sim_events_pending", "events waiting in the scheduler queue"
                ).set(self.pending)
            return True
        return False

    def run_until(self, timestamp: float) -> None:
        """Process every event with time <= ``timestamp``, then jump there."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > timestamp:
                break
            self.step()
        if timestamp > self.clock.now:
            self.clock.advance_to(timestamp)

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count
