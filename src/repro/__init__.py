"""repro — reproduction of "Recursives in the Wild: Engineering
Authoritative DNS Servers" (Müller, Moura, Schmidt, Heidemann; IMC 2017).

Subpackages
-----------
``repro.dns``
    From-scratch DNS substrate: wire format, zones, authoritative engine.
``repro.netsim``
    Simulated Internet: virtual time, geography→latency, unicast/anycast.
``repro.resolvers``
    Recursive resolver models: caches and real selection algorithms.
``repro.atlas``
    RIPE-Atlas-like vantage-point platform and measurement campaigns.
``repro.passive``
    DITL/ENTRADA-style production trace synthesis (Root, .nl).
``repro.core``
    The paper's experiments (Table 1 combinations) and the §7
    deployment planner.
``repro.analysis``
    One analysis per figure/table of the paper.
``repro.telemetry``
    Metrics registry, query-lifecycle tracing, and run profiling.
"""

import logging

__version__ = "1.0.0"

# Library etiquette: never log unless the application opts in.  The CLI
# attaches a real stderr handler via its --log-level flag.
logging.getLogger("repro").addHandler(logging.NullHandler())

from . import analysis, atlas, core, dns, netsim, passive, resolvers, telemetry

__all__ = [
    "analysis",
    "atlas",
    "core",
    "dns",
    "netsim",
    "passive",
    "resolvers",
    "telemetry",
    "__version__",
]
