"""Hierarchical seed derivation: one root seed, many independent streams.

The simulator used to thread randomness through components by drawing
``root.randrange(2**63)`` sequentially — which makes every stream a
function of *construction order*.  Reordering components, skipping one,
or running a subset of the probe population in a worker process silently
changes every stream after the edit.  Worse, several modules defaulted
to ``random.Random(0)``, handing byte-identical streams to components
that are supposed to be independent.

This module replaces both patterns with SeedSequence-style *path
derivation*: a child seed is a pure function of the root seed and a
hierarchical path of tokens::

    derive(seed, "platform")                  # component stream
    derive(seed, "resolver", probe_id, 0)     # per-entity stream

Two properties make the sharded experiment engine
(:mod:`repro.core.parallel`) correct:

* **Layout invariance** — a stream depends only on its path, never on
  how many other streams exist or in which order they were created, so
  partitioning the probe population over K workers cannot perturb any
  draw.
* **Platform stability** — derivation is SHA-256 over canonical token
  bytes, not Python's randomized ``hash()``, so every process (and
  every ``PYTHONHASHSEED``) derives identical seeds.

Only the standard library is used and nothing from ``repro`` is
imported, so any layer may depend on this module without cycles.  The
canonical import path is :mod:`repro.core.seeding` (a re-export).
"""

from __future__ import annotations

import hashlib
import random

#: derived seeds are 63-bit non-negative ints (fits ``randrange(2**63)``)
SEED_BITS = 63

#: token-type domain separators: "city" must never collide with b"city"
#: or 0x63697479, so each token is tagged before hashing.
_TAG_INT = b"i"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_SEPARATOR = b"\x1f"

Token = "int | str | bytes"


def _token_bytes(token) -> bytes:
    """Canonical, collision-safe byte encoding of one path token."""
    if isinstance(token, bool):  # bool is an int subclass; be explicit
        return _TAG_INT + str(int(token)).encode("ascii")
    if isinstance(token, int):
        return _TAG_INT + str(token).encode("ascii")
    if isinstance(token, str):
        return _TAG_STR + token.encode("utf-8")
    if isinstance(token, bytes):
        return _TAG_BYTES + token
    raise TypeError(
        f"seed-path tokens must be int, str, or bytes, got {type(token).__name__}"
    )


def derive(root: int, *path) -> int:
    """A child seed: a pure function of ``root`` and the token ``path``.

    The same (root, path) always yields the same seed on every platform
    and in every process; distinct paths yield independent seeds (SHA-256
    collision resistance).  At least one path token is required — a
    derivation with no path would be indistinguishable from the root.
    """
    if not path:
        raise ValueError("derive() needs at least one path token")
    digest = hashlib.sha256()
    digest.update(_TAG_INT + str(int(root)).encode("ascii"))
    for token in path:
        digest.update(_SEPARATOR)
        digest.update(_token_bytes(token))
    return int.from_bytes(digest.digest()[:8], "big") >> (64 - SEED_BITS)


def derive_rng(root: int, *path) -> random.Random:
    """A :class:`random.Random` seeded by :func:`derive`."""
    return random.Random(derive(root, *path))


def default_rng(*path) -> random.Random:
    """The stream a component falls back to when no rng/seed is given.

    Replaces the old ``random.Random(0)`` defaults: still deterministic,
    but namespaced per component so two different components that both
    omit an rng no longer share one stream (the synchronization bug the
    old defaults caused).  Components should pass their qualified name,
    e.g. ``default_rng("resolvers.forwarder")``.
    """
    return derive_rng(0, "default", *path)


class SpawnKey:
    """A bound (root, path prefix) that spawns child seeds and streams.

    Mirrors :class:`numpy.random.SeedSequence.spawn` ergonomics for code
    that hands sub-keys down a hierarchy::

        key = SpawnKey(config.seed, "platform")
        vp_rng = key.rng("vp", probe_id)
        child = key.child("resolver")       # SpawnKey one level down
    """

    __slots__ = ("root", "path")

    def __init__(self, root: int, *path):
        self.root = int(root)
        self.path = tuple(path)

    def derive(self, *path) -> int:
        return derive(self.root, *self.path, *path)

    def rng(self, *path) -> random.Random:
        return derive_rng(self.root, *self.path, *path)

    def child(self, *path) -> "SpawnKey":
        return SpawnKey(self.root, *self.path, *path)

    def __repr__(self) -> str:
        return f"SpawnKey({self.root}, {', '.join(map(repr, self.path))})"


__all__ = ["SEED_BITS", "SpawnKey", "default_rng", "derive", "derive_rng"]
