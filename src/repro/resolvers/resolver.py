"""The recursive resolver: iterative resolution over the simulated network.

A :class:`RecursiveResolver` owns a record cache, an infrastructure
cache, and a :class:`~repro.resolvers.base.ServerSelector`.  It resolves
names by walking referrals from the deepest zone it knows servers for
(root hints and/or stub zones), exactly like the recursives between the
paper's vantage points and its authoritatives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..dns.message import (
    HEADER_STRUCT,
    QUESTION_TAIL_STRUCT,
    Message,
    ResponseDecodeMemo,
)
from ..dns.name import Name
from ..dns.rdata import TXT
from ..dns.records import ResourceRecord
from ..dns.types import Rcode, RRClass, RRType

CHAOS_SELF_NAMES = (
    Name.from_text("id.server."),
    Name.from_text("hostname.bind."),
)
from ..netsim.geo import Location
from ..netsim.network import SimNetwork
from ..seeding import default_rng
from ..telemetry import NULL_SPAN, NULL_TELEMETRY
from .base import ServerSelector
from .infracache import InfrastructureCache
from .rrcache import RecordCache

MAX_REFERRALS = 16


@dataclass(frozen=True)
class ExchangeRecord:
    """One query/response exchange with an authoritative."""

    address: str
    rtt_ms: float | None
    lost: bool
    served_by: str


@dataclass
class ResolutionResult:
    """Outcome of one recursive resolution."""

    qname: Name
    qtype: RRType
    rcode: Rcode | None = None
    answers: list[ResourceRecord] = field(default_factory=list)
    served_by: str = ""          # site code of the final answering server
    final_address: str = ""      # service address the final answer came from
    rtt_ms: float | None = None  # RTT of the final exchange
    exchanges: list[ExchangeRecord] = field(default_factory=list)
    from_cache: bool = False

    @property
    def succeeded(self) -> bool:
        return self.rcode == Rcode.NOERROR and bool(self.answers)

    def txt_value(self) -> str | None:
        """The first TXT string in the answer — the paper's site marker."""
        for record in self.answers:
            value = getattr(record.rdata, "value", None)
            if value is not None:
                return value
        return None


class RecursiveResolver:
    """A recursive resolver attached to the simulated network."""

    def __init__(
        self,
        address: str,
        location: Location,
        network: SimNetwork,
        selector: ServerSelector,
        infra_ttl_s: float = 600.0,
        timeout_ms: float = 800.0,
        max_retries: int = 3,
        rng: random.Random | None = None,
        qname_minimization: bool = False,
        case_randomization: bool = False,
        telemetry=None,
    ):
        self.address = address
        self.location = location
        self.network = network
        self.selector = selector
        if telemetry is None:
            # Default to the network's bundle: wiring telemetry into the
            # shared SimNetwork instruments every attached resolver.
            telemetry = getattr(network, "telemetry", None)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if self.telemetry.enabled:
            selector.telemetry = self.telemetry
        self.infra_cache = InfrastructureCache(ttl_s=infra_ttl_s)
        self.record_cache = RecordCache()
        self.timeout_ms = timeout_ms
        self.max_retries = max_retries
        # Derived, not hash()-based: str hashes vary per process under
        # PYTHONHASHSEED randomization, which silently made the default
        # stream differ between spawned workers and the parent.
        self.rng = (
            rng if rng is not None
            else default_rng("resolvers.resolver", address)
        )
        #: zone origin -> authoritative service addresses
        self.stub_zones: dict[Name, list[str]] = {}
        self.queries_sent = 0
        #: RFC 7816: leak only one label per zone cut while walking down
        self.qname_minimization = qname_minimization
        #: DNS-0x20: randomize qname case and verify the echo (anti-spoof)
        self.case_randomization = case_randomization
        self.spoofs_rejected = 0
        # Template-shaped responses (same server template, different
        # probe label) decode through a canary-certified memo.
        self._response_memo = ResponseDecodeMemo()

    # -- configuration -----------------------------------------------------

    def add_stub_zone(self, origin: Name | str, addresses: list[str]) -> None:
        """Teach the resolver the NS addresses of a zone (like cached NS)."""
        if isinstance(origin, str):
            origin = Name.from_text(origin)
        # Interned: every resolver shares one origin object (and its
        # cached hash/wire), so suffix walks and cache keys stay cheap.
        self.stub_zones[origin.intern()] = list(addresses)

    def set_root_hints(self, addresses: list[str]) -> None:
        from ..dns.name import ROOT

        self.stub_zones[ROOT] = list(addresses)

    def _deepest_known_zone(self, qname: Name) -> tuple[Name, list[str]] | None:
        best: tuple[Name, list[str]] | None = None
        for origin, addresses in self.stub_zones.items():
            if qname.is_subdomain_of(origin):
                if best is None or len(origin) > len(best[0]):
                    best = (origin, addresses)
        return best

    # -- resolution -----------------------------------------------------------

    def resolve(
        self,
        qname: Name | str,
        qtype: RRType,
        rrclass: RRClass = RRClass.IN,
    ) -> ResolutionResult:
        """Resolve a name, using caches, selection, retries, and referrals.

        CHAOS-class identification queries (``id.server.``,
        ``hostname.bind.``) are answered by the recursive itself and
        never forwarded — the §3.1 pitfall that makes CHAOS useless for
        catchment mapping through recursives.

        With telemetry enabled, every resolution opens a
        ``resolver.resolve`` root span whose children trace each
        exchange attempt down through the network and authoritative.
        """
        if isinstance(qname, str):
            qname = Name.from_text(qname)
        telemetry = self.telemetry
        # Ledger denominator: one "query" per resolution entering the
        # resolver, counted on both the traced and untraced paths.
        costs = telemetry.costs
        if costs.enabled:
            costs.count("query")
        if not telemetry.enabled:
            return self._resolve(qname, qtype, rrclass, NULL_SPAN)
        tracer = telemetry.tracer
        start = self.network.clock.now
        span = tracer.start_span(
            "resolver.resolve",
            at=start,
            resolver=self.address,
            qname=qname.to_text(),
            qtype=getattr(qtype, "name", str(int(qtype))),
        )
        try:
            result = self._resolve(qname, qtype, rrclass, span)
            rcode = (
                getattr(result.rcode, "name", str(result.rcode))
                if result.rcode is not None
                else "NONE"
            )
            span.set(rcode=rcode, site=result.served_by)
            registry = telemetry.registry
            registry.counter(
                "resolver_queries_total", "resolutions attempted by recursives"
            ).inc()
            registry.counter(
                "resolver_resolutions_total",
                "completed resolutions, by outcome rcode",
                ("rcode",),
            ).labels(rcode=rcode).inc()
            cache_outcome = str(span.attributes.get("cache", "miss"))
            registry.counter(
                "resolver_cache_total",
                "record-cache outcomes per resolution",
                ("result",),
            ).labels(result=cache_outcome).inc()
            return result
        finally:
            # Virtual end: the latest child end (exchanges carry the RTT
            # and timeout waits); the clock itself does not advance.
            end = max(
                [child.end for child in span.children if child.end is not None]
                + [start]
            )
            tracer.finish_span(span, at=end)

    def _resolve(
        self,
        qname: Name,
        qtype: RRType,
        rrclass: RRClass,
        span,
    ) -> ResolutionResult:
        now = self.network.clock.now
        costs = self.telemetry.costs
        costs_on = costs.enabled
        result = ResolutionResult(qname=qname, qtype=qtype)

        if rrclass == RRClass.CH:
            if qtype == RRType.TXT and qname in CHAOS_SELF_NAMES:
                result.rcode = Rcode.NOERROR
                result.answers = [
                    ResourceRecord(
                        qname, RRType.TXT, RRClass.CH, 0,
                        TXT.from_value(f"resolver-{self.address}"),
                    )
                ]
                result.served_by = f"resolver-{self.address}"
            else:
                result.rcode = Rcode.REFUSED
            return result

        if costs_on:
            costs.count("cache_lookup")
        cached = self.record_cache.get(qname, qtype, now)
        if cached is not None:
            result.rcode = Rcode.NOERROR
            result.answers = list(cached.records)
            result.from_cache = True
            span.set(cache="hit").event("cache_hit", at=now)
            return result
        if costs_on:
            costs.count("cache_lookup")
        negative = self.record_cache.get_negative(qname, qtype, now)
        if negative is not None:
            result.rcode = Rcode.NXDOMAIN if negative.nxdomain else Rcode.NOERROR
            result.from_cache = True
            span.set(cache="negative").event("cache_negative_hit", at=now)
            return result
        span.set(cache="miss").event("cache_miss", at=now)

        start = self._deepest_known_zone(qname)
        if start is None:
            result.rcode = Rcode.SERVFAIL
            return result
        current_zone, addresses = start[0], list(start[1])

        for _ in range(MAX_REFERRALS):
            send_name, send_type = self._minimized_question(
                qname, qtype, current_zone
            )
            response = self._query_with_retries(
                send_name, send_type, addresses, result
            )
            if response is None:
                result.rcode = Rcode.SERVFAIL
                return result
            message, address, served_by, rtt_ms = response
            if message.rcode == Rcode.NXDOMAIN:
                self._cache_negative(message, send_name, send_type, nxdomain=True)
                self._finalize(result, message, address, served_by, rtt_ms)
                result.rcode = Rcode.NXDOMAIN
                return result
            if message.rcode != Rcode.NOERROR:
                result.rcode = message.rcode
                self._finalize(result, message, address, served_by, rtt_ms)
                return result
            referral = self._referral_addresses(message)
            if referral and not message.answers:
                addresses = referral
                cut = self._referral_cut(message)
                if cut is not None:
                    current_zone = cut
                continue
            if send_name != qname:
                # Minimized probe: the intermediate name exists (NOERROR),
                # so descend one label and keep asking the same servers.
                current_zone = send_name
                continue
            if message.answers:
                self.record_cache.put(
                    qname, qtype, list(message.answers), self.network.clock.now
                )
                self._finalize(result, message, address, served_by, rtt_ms)
                return result
            # NODATA: name exists but not this type.
            self._cache_negative(message, qname, qtype, nxdomain=False)
            self._finalize(result, message, address, served_by, rtt_ms)
            return result
        result.rcode = Rcode.SERVFAIL
        return result

    def _minimized_question(
        self, qname: Name, qtype: RRType, current_zone: Name
    ) -> tuple[Name, RRType]:
        """RFC 7816: expose one label below the current zone, type NS."""
        if not self.qname_minimization:
            return qname, qtype
        if not qname.is_subdomain_of(current_zone) or qname == current_zone:
            return qname, qtype
        relative = qname.relativize(current_zone)
        if len(relative) <= 1:
            return qname, qtype
        child = current_zone.child(relative[-1])
        return child, RRType.NS

    # -- internals ---------------------------------------------------------------

    def _query_with_retries(
        self,
        qname: Name,
        qtype: RRType,
        addresses: list[str],
        result: ResolutionResult,
    ) -> tuple[Message, str, str, float] | None:
        now = self.network.clock.now
        telemetry = self.telemetry
        costs = telemetry.costs
        costs_on = costs.enabled
        question_tail = QUESTION_TAIL_STRUCT.pack(int(qtype), int(RRClass.IN))
        for attempt in range(self.max_retries + 1):
            address = self.selector.select(addresses, self.infra_cache, now)
            send_name = (
                self._randomize_case(qname) if self.case_randomization else qname
            )
            # Wire built directly: byte-identical to Message.make_query(
            # ..., recursion_desired=False).to_wire() — header flags are
            # all zero for an iterative QUERY and a lone question never
            # compresses — without a Message/Question round trip.
            msg_id = self.rng.randrange(0x10000)
            query_wire = (
                HEADER_STRUCT.pack(msg_id, 0, 1, 0, 0, 0)
                + send_name.to_wire()
                + question_tail
            )
            if costs_on:
                # One seeded draw (the message id) and one wire build
                # per attempt, whatever the exchange outcome.
                costs.count("rng_draw")
                costs.count("encode")
            self.queries_sent += 1
            span = NULL_SPAN
            if telemetry.enabled:
                span = telemetry.tracer.start_span(
                    "resolver.exchange", at=now, ns=address, attempt=attempt + 1
                )
            outcome = "ok"
            try:
                try:
                    trip = self.network.round_trip(
                        self.location, self.address, address, query_wire
                    )
                except Exception:
                    # Host gone (withdrawn mid-measurement): a timeout to us.
                    result.exchanges.append(ExchangeRecord(address, None, True, ""))
                    self.selector.on_timeout(
                        address, addresses, self.infra_cache, now
                    )
                    outcome = "unreachable"
                    continue
                if trip.lost or trip.response is None:
                    result.exchanges.append(
                        ExchangeRecord(address, None, True, "")
                    )
                    self.selector.on_timeout(
                        address, addresses, self.infra_cache, now
                    )
                    outcome = "timeout"
                    continue
                if costs_on:
                    costs.count("decode")
                try:
                    message = self._response_memo.decode(trip.response, send_name)
                except Exception:
                    self.selector.on_timeout(
                        address, addresses, self.infra_cache, now
                    )
                    outcome = "garbled"
                    continue
                if message.msg_id != msg_id:
                    outcome = "id_mismatch"
                    continue  # spoofed/mismatched: ignore, treat as failure
                if self.case_randomization and message.questions:
                    echoed = message.questions[0].name.labels
                    if echoed != send_name.labels:
                        # Case mismatch: off-path spoof; discard the response.
                        self.spoofs_rejected += 1
                        outcome = "spoof_rejected"
                        continue
                result.exchanges.append(
                    ExchangeRecord(address, trip.rtt_ms, False, trip.served_by)
                )
                self.selector.on_response(
                    address, trip.rtt_ms, addresses, self.infra_cache, now
                )
                span.set(site=trip.served_by, rtt_ms=round(trip.rtt_ms, 3))
                return message, address, trip.served_by, trip.rtt_ms
            finally:
                if telemetry.enabled:
                    span.set(outcome=outcome)
                    # Virtual end: the answer's RTT, or the full timeout
                    # the resolver waits before moving on.
                    if outcome == "ok":
                        rtt_ms = span.attributes.get("rtt_ms", 0.0)
                        end = now + float(rtt_ms) / 1000.0
                    else:
                        end = now + self.timeout_ms / 1000.0
                    telemetry.tracer.finish_span(span, at=end)
                    telemetry.registry.counter(
                        "resolver_exchanges_total",
                        "exchange attempts against authoritatives, by outcome",
                        ("outcome",),
                    ).labels(outcome=outcome).inc()
        return None

    def _referral_cut(self, message: Message) -> Name | None:
        """The delegation point named by a referral's authority NS set."""
        for record in message.authorities:
            if record.rrtype == RRType.NS:
                return record.name
        return None

    def _randomize_case(self, name: Name) -> Name:
        """DNS-0x20: flip each ASCII letter's case with probability 1/2."""
        labels = []
        for label in name.labels:
            out = bytearray()
            for byte in label:
                if (0x41 <= byte <= 0x5A or 0x61 <= byte <= 0x7A) and (
                    self.rng.random() < 0.5
                ):
                    byte ^= 0x20
                out.append(byte)
            labels.append(bytes(out))
        # Case flips preserve every length invariant, and the folded
        # form is the input's: the flyweight skips both re-checks.
        return Name._from_validated(tuple(labels), name._folded)

    def _referral_addresses(self, message: Message) -> list[str]:
        """Glue addresses from a referral response that we can route to."""
        addresses = []
        for record in message.additionals:
            if record.rrtype in (RRType.A, RRType.AAAA):
                address = record.rdata.address
                if self.network.knows(address):
                    addresses.append(address)
        return addresses

    def _cache_negative(
        self, message: Message, qname: Name, qtype: RRType, nxdomain: bool
    ) -> None:
        ttl = 0
        for record in message.authorities:
            if record.rrtype == RRType.SOA:
                minimum = getattr(record.rdata, "minimum", 0)
                ttl = min(record.ttl, minimum)
                break
        if ttl > 0:
            self.record_cache.put_negative(
                qname, qtype, nxdomain, ttl, self.network.clock.now
            )

    @staticmethod
    def _finalize(
        result: ResolutionResult,
        message: Message,
        address: str,
        served_by: str,
        rtt_ms: float,
    ) -> None:
        result.rcode = message.rcode
        result.answers = list(message.answers)
        result.final_address = address
        result.served_by = served_by
        result.rtt_ms = rtt_ms
