"""The recursive resolver: iterative resolution over the simulated network.

A :class:`RecursiveResolver` owns a record cache, an infrastructure
cache, and a :class:`~repro.resolvers.base.ServerSelector`.  It resolves
names by walking referrals from the deepest zone it knows servers for
(root hints and/or stub zones), exactly like the recursives between the
paper's vantage points and its authoritatives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..dns.message import (
    HEADER_STRUCT,
    QUESTION_TAIL_STRUCT,
    Message,
    ResponseDecodeMemo,
)
from ..dns.name import Name
from ..dns.rdata import TXT
from ..dns.records import ResourceRecord
from ..dns.types import Rcode, RRClass, RRType

CHAOS_SELF_NAMES = (
    Name.from_text("id.server."),
    Name.from_text("hostname.bind."),
)
from ..netsim.geo import Location
from ..netsim.network import SimNetwork
from ..seeding import default_rng
from ..telemetry import NULL_SPAN, NULL_TELEMETRY
from .base import ServerSelector
from .infracache import InfrastructureCache
from .rrcache import RecordCache

MAX_REFERRALS = 16

#: nesting bound for glueless-NS sub-resolutions (an NS target whose
#: resolution needs another glueless delegation, and so on).  Real
#: resolvers bound this chase; without a bound a crafted zone could
#: recurse indefinitely.
MAX_FETCH_DEPTH = 4

#: response classification codes shared by the synchronous referral
#: loop and the event-driven resolution path, so both engines apply
#: identical semantics (including the dead-referral SERVFAIL fix).
_NXDOMAIN, _ERROR, _REFERRAL, _DEAD_REFERRAL, _DESCEND, _ANSWER, _NODATA = range(7)


@dataclass(frozen=True)
class ExchangeRecord:
    """One query/response exchange with an authoritative."""

    address: str
    rtt_ms: float | None
    lost: bool
    served_by: str


@dataclass
class ResolutionResult:
    """Outcome of one recursive resolution."""

    qname: Name
    qtype: RRType
    rcode: Rcode | None = None
    answers: list[ResourceRecord] = field(default_factory=list)
    served_by: str = ""          # site code of the final answering server
    final_address: str = ""      # service address the final answer came from
    rtt_ms: float | None = None  # RTT of the final exchange
    #: exchange attempts made (always maintained, a bare int); equals
    #: ``len(exchanges)`` whenever exchange recording is on.
    attempts: int = 0
    #: per-exchange records — populated only when the resolver's
    #: ``record_exchanges`` is on (telemetry/ledger active, or forced).
    exchanges: list[ExchangeRecord] = field(default_factory=list)
    from_cache: bool = False
    #: glueless-NS sub-resolutions spawned by this client query (all
    #: nesting levels) — the NXNSAttack fetch-amplification numerator.
    ns_fetches: int = 0

    @property
    def succeeded(self) -> bool:
        return self.rcode == Rcode.NOERROR and bool(self.answers)

    def txt_value(self) -> str | None:
        """The first TXT string in the answer — the paper's site marker."""
        for record in self.answers:
            value = getattr(record.rdata, "value", None)
            if value is not None:
                return value
        return None


class RecursiveResolver:
    """A recursive resolver attached to the simulated network."""

    def __init__(
        self,
        address: str,
        location: Location,
        network: SimNetwork,
        selector: ServerSelector,
        infra_ttl_s: float = 600.0,
        timeout_ms: float = 800.0,
        max_retries: int = 3,
        rng: random.Random | None = None,
        qname_minimization: bool = False,
        case_randomization: bool = False,
        telemetry=None,
        record_exchanges: bool | None = None,
        max_fetch: int | None = None,
        max_fetch_per_delegation: int | None = None,
    ):
        self.address = address
        self.location = location
        self.network = network
        self.selector = selector
        if telemetry is None:
            # Default to the network's bundle: wiring telemetry into the
            # shared SimNetwork instruments every attached resolver.
            telemetry = getattr(network, "telemetry", None)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if self.telemetry.enabled:
            selector.telemetry = self.telemetry
        self.infra_cache = InfrastructureCache(ttl_s=infra_ttl_s)
        self.record_cache = RecordCache()
        self.record_cache.bind_clock(network.clock)
        # Per-exchange ExchangeRecord allocation is opt-in: campaigns
        # only need the attempt *count* unless telemetry or the cost
        # ledger wants the full exchange detail.  ``None`` auto-gates on
        # those pillars; tests and tools can force it on explicitly.
        if record_exchanges is None:
            record_exchanges = (
                self.telemetry.enabled or self.telemetry.costs.enabled
            )
        self.record_exchanges = record_exchanges
        self.timeout_ms = timeout_ms
        self.max_retries = max_retries
        # Derived, not hash()-based: str hashes vary per process under
        # PYTHONHASHSEED randomization, which silently made the default
        # stream differ between spawned workers and the parent.
        self.rng = (
            rng if rng is not None
            else default_rng("resolvers.resolver", address)
        )
        #: zone origin -> authoritative service addresses
        self.stub_zones: dict[Name, list[str]] = {}
        self.queries_sent = 0
        #: MaxFetch-style mitigations (NXNSAttack): total glueless-NS
        #: sub-resolutions allowed per client query, and how many NS
        #: targets of a single delegation may be chased.  ``None`` means
        #: unmitigated (the pre-2020 resolver behaviour the attack hit).
        self.max_fetch = max_fetch
        self.max_fetch_per_delegation = max_fetch_per_delegation
        #: resolver-lifetime count of glueless-NS sub-resolutions.
        self.ns_fetches = 0
        #: RFC 7816: leak only one label per zone cut while walking down
        self.qname_minimization = qname_minimization
        #: DNS-0x20: randomize qname case and verify the echo (anti-spoof)
        self.case_randomization = case_randomization
        self.spoofs_rejected = 0
        # Template-shaped responses (same server template, different
        # probe label) decode through a canary-certified memo.
        self._response_memo = ResponseDecodeMemo()

    # -- configuration -----------------------------------------------------

    def add_stub_zone(self, origin: Name | str, addresses: list[str]) -> None:
        """Teach the resolver the NS addresses of a zone (like cached NS)."""
        if isinstance(origin, str):
            origin = Name.from_text(origin)
        # Interned: every resolver shares one origin object (and its
        # cached hash/wire), so suffix walks and cache keys stay cheap.
        self.stub_zones[origin.intern()] = list(addresses)

    def set_root_hints(self, addresses: list[str]) -> None:
        from ..dns.name import ROOT

        self.stub_zones[ROOT] = list(addresses)

    def _deepest_known_zone(self, qname: Name) -> tuple[Name, list[str]] | None:
        best: tuple[Name, list[str]] | None = None
        for origin, addresses in self.stub_zones.items():
            if qname.is_subdomain_of(origin):
                if best is None or len(origin) > len(best[0]):
                    best = (origin, addresses)
        return best

    # -- resolution -----------------------------------------------------------

    def resolve(
        self,
        qname: Name | str,
        qtype: RRType,
        rrclass: RRClass = RRClass.IN,
    ) -> ResolutionResult:
        """Resolve a name, using caches, selection, retries, and referrals.

        CHAOS-class identification queries (``id.server.``,
        ``hostname.bind.``) are answered by the recursive itself and
        never forwarded — the §3.1 pitfall that makes CHAOS useless for
        catchment mapping through recursives.

        With telemetry enabled, every resolution opens a
        ``resolver.resolve`` root span whose children trace each
        exchange attempt down through the network and authoritative.
        """
        if isinstance(qname, str):
            qname = Name.from_text(qname)
        telemetry = self.telemetry
        # Ledger denominator: one "query" per resolution entering the
        # resolver, counted on both the traced and untraced paths.
        costs = telemetry.costs
        if costs.enabled:
            costs.count("query")
        if not telemetry.enabled:
            return self._resolve(qname, qtype, rrclass, NULL_SPAN)
        tracer = telemetry.tracer
        start = self.network.clock.now
        span = tracer.start_span(
            "resolver.resolve",
            at=start,
            resolver=self.address,
            qname=qname.to_text(),
            qtype=getattr(qtype, "name", str(int(qtype))),
        )
        try:
            result = self._resolve(qname, qtype, rrclass, span)
            rcode = (
                getattr(result.rcode, "name", str(result.rcode))
                if result.rcode is not None
                else "NONE"
            )
            span.set(rcode=rcode, site=result.served_by)
            registry = telemetry.registry
            registry.counter(
                "resolver_queries_total", "resolutions attempted by recursives"
            ).inc()
            registry.counter(
                "resolver_resolutions_total",
                "completed resolutions, by outcome rcode",
                ("rcode",),
            ).labels(rcode=rcode).inc()
            cache_outcome = str(span.attributes.get("cache", "miss"))
            registry.counter(
                "resolver_cache_total",
                "record-cache outcomes per resolution",
                ("result",),
            ).labels(result=cache_outcome).inc()
            return result
        finally:
            # Virtual end: the latest child end (exchanges carry the RTT
            # and timeout waits); the clock itself does not advance.
            end = max(
                [child.end for child in span.children if child.end is not None]
                + [start]
            )
            tracer.finish_span(span, at=end)

    def _resolution_prologue(
        self,
        qname: Name,
        qtype: RRType,
        rrclass: RRClass,
        span,
        result: ResolutionResult,
    ) -> tuple[Name, list[str]] | None:
        """CHAOS self-answers and cache lookups, shared by both engines.

        Returns ``None`` when ``result`` is already complete (no network
        exchange needed), else the starting ``(zone, addresses)`` for
        the referral walk.
        """
        now = self.network.clock.now
        costs = self.telemetry.costs
        costs_on = costs.enabled

        if rrclass == RRClass.CH:
            if qtype == RRType.TXT and qname in CHAOS_SELF_NAMES:
                result.rcode = Rcode.NOERROR
                result.answers = [
                    ResourceRecord(
                        qname, RRType.TXT, RRClass.CH, 0,
                        TXT.from_value(f"resolver-{self.address}"),
                    )
                ]
                result.served_by = f"resolver-{self.address}"
            else:
                result.rcode = Rcode.REFUSED
            return None

        if costs_on:
            costs.count("cache_lookup")
        cached = self.record_cache.lookup(qname, qtype)
        if cached is not None:
            result.rcode = Rcode.NOERROR
            result.answers = list(cached.records)
            result.from_cache = True
            span.set(cache="hit").event("cache_hit", at=now)
            return None
        if costs_on:
            costs.count("cache_lookup")
        negative = self.record_cache.lookup_negative(qname, qtype)
        if negative is not None:
            result.rcode = Rcode.NXDOMAIN if negative.nxdomain else Rcode.NOERROR
            result.from_cache = True
            span.set(cache="negative").event("cache_negative_hit", at=now)
            return None
        span.set(cache="miss").event("cache_miss", at=now)

        start = self._deepest_known_zone(qname)
        if start is None:
            result.rcode = Rcode.SERVFAIL
            return None
        return start[0], list(start[1])

    def _classify_response(
        self, message: Message, send_name: Name, qname: Name
    ) -> tuple[int, list[str] | None, Name | None]:
        """Classify one authoritative response for the referral walk.

        Returns ``(kind, referral_addresses, referral_cut)``.  Both the
        synchronous loop and the event-driven path route through this,
        so fixes to the walk semantics apply to each identically.
        """
        if message.rcode == Rcode.NXDOMAIN:
            return _NXDOMAIN, None, None
        if message.rcode != Rcode.NOERROR:
            return _ERROR, None, None
        if not message.answers:
            referral = self._referral_addresses(message)
            cut = self._referral_cut(message)
            if referral:
                return _REFERRAL, referral, cut
            if cut is not None:
                # A referral without routable glue: not proof the name
                # lacks data (falling through to NODATA would poison the
                # negative cache), but also not necessarily a dead end —
                # the caller may resolve the NS target names themselves
                # (the glueless fetch the NXNSAttack amplifies).
                return _DEAD_REFERRAL, None, cut
        if send_name != qname:
            # Minimized probe: the intermediate name exists (NOERROR),
            # so descend one label and keep asking the same servers.
            return _DESCEND, None, None
        if message.answers:
            return _ANSWER, None, None
        return _NODATA, None, None

    def _resolve(
        self,
        qname: Name,
        qtype: RRType,
        rrclass: RRClass,
        span,
        depth: int = 0,
        budget: ResolutionResult | None = None,
        pending: tuple[Name, ...] = (),
    ) -> ResolutionResult:
        result = ResolutionResult(qname=qname, qtype=qtype)
        if budget is None:
            # ``budget`` is the top-level client result: nested NS
            # fetches all bill their amplification against it, so
            # ``max_fetch`` bounds the whole tree, not each level.
            budget = result
        start = self._resolution_prologue(qname, qtype, rrclass, span, result)
        if start is None:
            return result
        current_zone, addresses = start

        for _ in range(MAX_REFERRALS):
            send_name, send_type = self._minimized_question(
                qname, qtype, current_zone
            )
            response = self._query_with_retries(
                send_name, send_type, addresses, result
            )
            if response is None:
                result.rcode = Rcode.SERVFAIL
                return result
            message, address, served_by, rtt_ms = response
            kind, referral, cut = self._classify_response(message, send_name, qname)
            if kind == _NXDOMAIN:
                self._cache_negative(message, send_name, send_type, nxdomain=True)
                self._finalize(result, message, address, served_by, rtt_ms)
                result.rcode = Rcode.NXDOMAIN
                return result
            if kind == _ERROR:
                result.rcode = message.rcode
                self._finalize(result, message, address, served_by, rtt_ms)
                return result
            if kind == _REFERRAL:
                addresses = referral
                if cut is not None:
                    current_zone = cut
                continue
            if kind == _DEAD_REFERRAL:
                # Glueless (or unroutable-glue) delegation: chase the NS
                # target names with sub-resolutions — the fetch fan-out
                # the NXNSAttack amplifies, bounded by ``max_fetch`` /
                # ``max_fetch_per_delegation`` / MAX_FETCH_DEPTH.
                fetched = self._fetch_ns_addresses(
                    message, span, depth, budget, pending
                )
                if fetched:
                    addresses = fetched
                    if cut is not None:
                        current_zone = cut
                    continue
                result.rcode = Rcode.SERVFAIL
                return result
            if kind == _DESCEND:
                current_zone = send_name
                continue
            if kind == _ANSWER:
                self.record_cache.put(
                    qname, qtype, list(message.answers), self.network.clock.now
                )
                self._finalize(result, message, address, served_by, rtt_ms)
                return result
            # NODATA: name exists but not this type.
            self._cache_negative(message, qname, qtype, nxdomain=False)
            self._finalize(result, message, address, served_by, rtt_ms)
            return result
        result.rcode = Rcode.SERVFAIL
        return result

    def _minimized_question(
        self, qname: Name, qtype: RRType, current_zone: Name
    ) -> tuple[Name, RRType]:
        """RFC 7816: expose one label below the current zone, type NS."""
        if not self.qname_minimization:
            return qname, qtype
        if not qname.is_subdomain_of(current_zone) or qname == current_zone:
            return qname, qtype
        relative = qname.relativize(current_zone)
        if len(relative) <= 1:
            return qname, qtype
        child = current_zone.child(relative[-1])
        return child, RRType.NS

    # -- event-driven resolution ------------------------------------------------

    def resolve_event(
        self,
        qname: Name | str,
        qtype: RRType,
        kernel,
        done,
        rrclass: RRClass = RRClass.IN,
    ) -> None:
        """Begin a resolution driven by the event kernel.

        ``done(result)`` fires when the resolution completes —
        synchronously for CHAOS self-queries and cache hits, otherwise
        from a kernel event at the virtual completion time.  Retries
        are real timer events (attempt N fires at ``send + N×timeout``)
        and responses are delivery events at ``send + rtt``, so one
        process interleaves thousands of in-flight resolutions and the
        clock advances through the kernel, never per query.

        Semantics (caches, selection, referral walk, retry budget,
        telemetry counters) are shared with :meth:`resolve` via
        :meth:`_resolution_prologue` and :meth:`_classify_response`.
        """
        if isinstance(qname, str):
            qname = Name.from_text(qname)
        telemetry = self.telemetry
        costs = telemetry.costs
        if costs.enabled:
            costs.count("query")
        span = NULL_SPAN
        if telemetry.enabled:
            # Explicit parent: interleaved resolutions would corrupt the
            # tracer's active-span stack, so event-path spans never use it.
            span = telemetry.tracer.start_span(
                "resolver.resolve",
                at=kernel.now,
                parent=None,
                resolver=self.address,
                qname=qname.to_text(),
                qtype=getattr(qtype, "name", str(int(qtype))),
            )
        result = ResolutionResult(qname=qname, qtype=qtype)
        state = _EventResolution(self, kernel, qname, qtype, done, span, result)
        start = self._resolution_prologue(qname, qtype, rrclass, span, result)
        if start is None:
            state._complete()
            return
        state.current_zone, state.addresses = start
        state._begin_iteration()

    def _emit_resolution_metrics(self, result: ResolutionResult, span) -> None:
        """Completion-side counters + root-span close, one per resolution."""
        telemetry = self.telemetry
        rcode = (
            getattr(result.rcode, "name", str(result.rcode))
            if result.rcode is not None
            else "NONE"
        )
        span.set(rcode=rcode, site=result.served_by)
        registry = telemetry.registry
        registry.counter(
            "resolver_queries_total", "resolutions attempted by recursives"
        ).inc()
        registry.counter(
            "resolver_resolutions_total",
            "completed resolutions, by outcome rcode",
            ("rcode",),
        ).labels(rcode=rcode).inc()
        cache_outcome = str(span.attributes.get("cache", "miss"))
        registry.counter(
            "resolver_cache_total",
            "record-cache outcomes per resolution",
            ("result",),
        ).labels(result=cache_outcome).inc()
        end = max(
            [child.end for child in span.children if child.end is not None]
            + [span.start]
        )
        telemetry.tracer.finish_span(span, at=end)

    # -- internals ---------------------------------------------------------------

    def _query_with_retries(
        self,
        qname: Name,
        qtype: RRType,
        addresses: list[str],
        result: ResolutionResult,
    ) -> tuple[Message, str, str, float] | None:
        now = self.network.clock.now
        telemetry = self.telemetry
        costs = telemetry.costs
        costs_on = costs.enabled
        record_exchanges = self.record_exchanges
        question_tail = QUESTION_TAIL_STRUCT.pack(int(qtype), int(RRClass.IN))
        # Failed attempts wait out the full timeout before the next try:
        # attempt N's span starts at now + N×timeout, so serialized
        # waits stack in the trace instead of overlapping (which made
        # forensics undercount wasted wait).  The clock itself does not
        # advance on this synchronous path; the event kernel realizes
        # the same schedule as actual timer events.
        waited_s = 0.0
        for attempt in range(self.max_retries + 1):
            attempt_at = now + waited_s
            address = self.selector.select(addresses, self.infra_cache, now)
            send_name = (
                self._randomize_case(qname) if self.case_randomization else qname
            )
            # Wire built directly: byte-identical to Message.make_query(
            # ..., recursion_desired=False).to_wire() — header flags are
            # all zero for an iterative QUERY and a lone question never
            # compresses — without a Message/Question round trip.
            msg_id = self.rng.randrange(0x10000)
            query_wire = (
                HEADER_STRUCT.pack(msg_id, 0, 1, 0, 0, 0)
                + send_name.to_wire()
                + question_tail
            )
            if costs_on:
                # One seeded draw (the message id) and one wire build
                # per attempt, whatever the exchange outcome.
                costs.count("rng_draw")
                costs.count("encode")
            self.queries_sent += 1
            span = NULL_SPAN
            if telemetry.enabled:
                span = telemetry.tracer.start_span(
                    "resolver.exchange", at=attempt_at, ns=address, attempt=attempt + 1
                )
            outcome = "ok"
            try:
                try:
                    trip = self.network.round_trip(
                        self.location, self.address, address, query_wire
                    )
                except Exception:
                    # Host gone (withdrawn mid-measurement): a timeout to us.
                    result.attempts += 1
                    if record_exchanges:
                        if costs_on:
                            costs.count("exchange_record")
                        result.exchanges.append(
                            ExchangeRecord(address, None, True, "")
                        )
                    self.selector.on_timeout(
                        address, addresses, self.infra_cache, now
                    )
                    outcome = "unreachable"
                    continue
                if trip.lost or trip.response is None:
                    result.attempts += 1
                    if record_exchanges:
                        if costs_on:
                            costs.count("exchange_record")
                        result.exchanges.append(
                            ExchangeRecord(address, None, True, "")
                        )
                    self.selector.on_timeout(
                        address, addresses, self.infra_cache, now
                    )
                    outcome = "timeout"
                    continue
                if costs_on:
                    costs.count("decode")
                try:
                    message = self._response_memo.decode(trip.response, send_name)
                except Exception:
                    result.attempts += 1
                    if record_exchanges:
                        if costs_on:
                            costs.count("exchange_record")
                        result.exchanges.append(
                            ExchangeRecord(address, None, True, "")
                        )
                    self.selector.on_timeout(
                        address, addresses, self.infra_cache, now
                    )
                    outcome = "garbled"
                    continue
                if message.msg_id != msg_id:
                    # Spoofed/mismatched id: the response is discarded,
                    # so the attempt failed exactly like a garbled one —
                    # the selector must learn it and the attempt must be
                    # booked on the result.
                    result.attempts += 1
                    if record_exchanges:
                        if costs_on:
                            costs.count("exchange_record")
                        result.exchanges.append(
                            ExchangeRecord(address, None, True, "")
                        )
                    self.selector.on_timeout(
                        address, addresses, self.infra_cache, now
                    )
                    outcome = "id_mismatch"
                    continue
                if self.case_randomization and message.questions:
                    echoed = message.questions[0].name.labels
                    if echoed != send_name.labels:
                        # Case mismatch: off-path spoof; discard the response.
                        self.spoofs_rejected += 1
                        outcome = "spoof_rejected"
                        continue
                result.attempts += 1
                if record_exchanges:
                    if costs_on:
                        costs.count("exchange_record")
                    result.exchanges.append(
                        ExchangeRecord(address, trip.rtt_ms, False, trip.served_by)
                    )
                self.selector.on_response(
                    address, trip.rtt_ms, addresses, self.infra_cache, now
                )
                span.set(site=trip.served_by, rtt_ms=round(trip.rtt_ms, 3))
                return message, address, trip.served_by, trip.rtt_ms
            finally:
                if telemetry.enabled:
                    span.set(outcome=outcome)
                    # Virtual end: the answer's RTT, or the full timeout
                    # the resolver waits before moving on — measured
                    # from this attempt's (offset) start.
                    if outcome == "ok":
                        rtt_ms = span.attributes.get("rtt_ms", 0.0)
                        end = attempt_at + float(rtt_ms) / 1000.0
                    else:
                        end = attempt_at + self.timeout_ms / 1000.0
                    telemetry.tracer.finish_span(span, at=end)
                    telemetry.registry.counter(
                        "resolver_exchanges_total",
                        "exchange attempts against authoritatives, by outcome",
                        ("outcome",),
                    ).labels(outcome=outcome).inc()
                if outcome != "ok":
                    waited_s += self.timeout_ms / 1000.0
        return None

    def _referral_cut(self, message: Message) -> Name | None:
        """The delegation point named by a referral's authority NS set."""
        for record in message.authorities:
            if record.rrtype == RRType.NS:
                return record.name
        return None

    def _referral_ns_targets(self, message: Message) -> list[Name]:
        """NS target names from a referral, for glueless-NS fetching."""
        targets: list[Name] = []
        seen: set[Name] = set()
        for record in message.authorities:
            if record.rrtype == RRType.NS:
                target = record.rdata.target
                if target not in seen:
                    seen.add(target)
                    targets.append(target)
        return targets

    def _fetch_budget_left(self, budget: ResolutionResult) -> bool:
        return self.max_fetch is None or budget.ns_fetches < self.max_fetch

    def _bill_ns_fetch(self, budget: ResolutionResult) -> None:
        budget.ns_fetches += 1
        self.ns_fetches += 1
        costs = self.telemetry.costs
        if costs.enabled:
            costs.count("ns_fetch")

    @staticmethod
    def _capped_fetch_targets(
        targets: list[Name], cap: int | None, pending: tuple[Name, ...]
    ) -> list[Name]:
        """Drop targets already being fetched up-stack, apply the per-
        delegation cap.  Shared by both engines so the scan order (and
        therefore every seeded draw downstream) is identical."""
        targets = [target for target in targets if target not in pending]
        if cap is not None:
            targets = targets[:cap]
        return targets

    def _fetch_ns_addresses(
        self,
        message: Message,
        span,
        depth: int,
        budget: ResolutionResult,
        pending: tuple[Name, ...],
    ) -> list[str]:
        """Resolve glueless NS target names to routable addresses.

        Each target costs one sub-resolution ("NS fetch") billed against
        the top-level query's ``budget`` — the quantity the NXNSAttack
        inflates and ``max_fetch`` caps.  Scanning stops at the first
        target that yields routable addresses: the walk only needs one
        reachable server, so eager fan-out would overstate benign cost
        (while a bomb's never-resolving targets still consume the full
        fan-out).
        """
        if depth >= MAX_FETCH_DEPTH:
            return []
        targets = self._capped_fetch_targets(
            self._referral_ns_targets(message),
            self.max_fetch_per_delegation,
            pending,
        )
        addresses: list[str] = []
        for target in targets:
            if not self._fetch_budget_left(budget):
                break
            self._bill_ns_fetch(budget)
            sub = self._resolve(
                target, RRType.A, RRClass.IN, span,
                depth=depth + 1, budget=budget, pending=pending + (target,),
            )
            addresses = self._routable_answer_addresses(sub)
            if addresses:
                break
        return addresses

    def _routable_answer_addresses(self, sub: ResolutionResult) -> list[str]:
        addresses = []
        for record in sub.answers:
            if record.rrtype in (RRType.A, RRType.AAAA):
                address = record.rdata.address
                if self.network.knows(address):
                    addresses.append(address)
        return addresses

    def _randomize_case(self, name: Name) -> Name:
        """DNS-0x20: flip each ASCII letter's case with probability 1/2."""
        labels = []
        for label in name.labels:
            out = bytearray()
            for byte in label:
                if (0x41 <= byte <= 0x5A or 0x61 <= byte <= 0x7A) and (
                    self.rng.random() < 0.5
                ):
                    byte ^= 0x20
                out.append(byte)
            labels.append(bytes(out))
        # Case flips preserve every length invariant, and the folded
        # form is the input's: the flyweight skips both re-checks.
        return Name._from_validated(tuple(labels), name._folded)

    def _referral_addresses(self, message: Message) -> list[str]:
        """Glue addresses from a referral response that we can route to."""
        addresses = []
        for record in message.additionals:
            if record.rrtype in (RRType.A, RRType.AAAA):
                address = record.rdata.address
                if self.network.knows(address):
                    addresses.append(address)
        return addresses

    def _cache_negative(
        self, message: Message, qname: Name, qtype: RRType, nxdomain: bool
    ) -> None:
        ttl = 0
        for record in message.authorities:
            if record.rrtype == RRType.SOA:
                minimum = getattr(record.rdata, "minimum", 0)
                ttl = min(record.ttl, minimum)
                break
        if ttl > 0:
            self.record_cache.put_negative(
                qname, qtype, nxdomain, ttl, self.network.clock.now
            )

    @staticmethod
    def _finalize(
        result: ResolutionResult,
        message: Message,
        address: str,
        served_by: str,
        rtt_ms: float,
    ) -> None:
        result.rcode = message.rcode
        result.answers = list(message.answers)
        result.final_address = address
        result.served_by = served_by
        result.rtt_ms = rtt_ms


class _EventResolution:
    """One in-flight resolution on the event kernel.

    Owns the referral-walk state the synchronous loop keeps on its call
    stack.  Each network send becomes either a delivery event (response
    arrives at ``send + rtt``) or a retry timer (attempt N+1 fires at
    ``send + timeout``); the state machine advances inside those events
    and calls ``done(result)`` when the walk terminates.
    """

    __slots__ = (
        "resolver", "kernel", "qname", "qtype", "done", "result", "span",
        "current_zone", "addresses", "iterations", "attempt",
        "send_name", "send_type", "sent_name", "question_tail",
        "msg_id", "address", "exch_span", "send_time", "exch_outcome",
        "depth", "budget", "pending", "emit_metrics",
        "fetch_targets", "fetch_addresses", "fetch_cut",
    )

    def __init__(
        self, resolver, kernel, qname, qtype, done, span, result,
        depth=0, budget=None, pending=(), emit_metrics=True,
    ):
        self.resolver = resolver
        self.kernel = kernel
        self.qname = qname
        self.qtype = qtype
        self.done = done
        self.span = span
        self.result = result
        self.current_zone: Name | None = None
        self.addresses: list[str] = []
        self.iterations = 0
        self.attempt = 0
        # Glueless-NS fetch state: ``budget`` is the top-level client
        # result (fetch amplification bills against it across nesting
        # levels); child fetch resolutions carry depth+1 and skip the
        # per-resolution metrics so the root span closes exactly once.
        self.depth = depth
        self.budget = budget if budget is not None else result
        self.pending: tuple[Name, ...] = pending
        self.emit_metrics = emit_metrics
        self.fetch_targets: list[Name] = []
        self.fetch_addresses: list[str] = []
        self.fetch_cut: Name | None = None

    # -- referral walk -----------------------------------------------------

    def _begin_iteration(self) -> None:
        if self.iterations >= MAX_REFERRALS:
            self.result.rcode = Rcode.SERVFAIL
            self._complete()
            return
        self.iterations += 1
        resolver = self.resolver
        self.send_name, self.send_type = resolver._minimized_question(
            self.qname, self.qtype, self.current_zone
        )
        self.question_tail = QUESTION_TAIL_STRUCT.pack(
            int(self.send_type), int(RRClass.IN)
        )
        self.attempt = 0
        self._send()

    def _send(self) -> None:
        resolver = self.resolver
        kernel = self.kernel
        now = kernel.now
        telemetry = resolver.telemetry
        costs = telemetry.costs
        self.address = resolver.selector.select(
            self.addresses, resolver.infra_cache, now
        )
        self.sent_name = (
            resolver._randomize_case(self.send_name)
            if resolver.case_randomization
            else self.send_name
        )
        self.msg_id = resolver.rng.randrange(0x10000)
        wire = (
            HEADER_STRUCT.pack(self.msg_id, 0, 1, 0, 0, 0)
            + self.sent_name.to_wire()
            + self.question_tail
        )
        if costs.enabled:
            # Same per-attempt accounting as the synchronous path: one
            # seeded draw (the message id) and one wire build.
            costs.count("rng_draw")
            costs.count("encode")
        resolver.queries_sent += 1
        self.send_time = now
        self.exch_span = NULL_SPAN
        parent = None
        if telemetry.enabled:
            self.exch_span = telemetry.tracer.start_span(
                "resolver.exchange",
                at=now,
                parent=self.span,
                ns=self.address,
                attempt=self.attempt + 1,
            )
            parent = self.exch_span
        try:
            resolver.network.transmit(
                kernel, resolver.location, resolver.address, self.address,
                wire, self._on_trip, parent=parent,
            )
        except Exception:
            # Host gone (withdrawn mid-measurement): a timeout to us.
            self._attempt_failed("unreachable")

    def _attempt_failed(self, outcome: str) -> None:
        """Wait out the timeout window, then book the failure and retry."""
        self.exch_outcome = outcome
        deadline = self.send_time + self.resolver.timeout_ms / 1000.0
        # A garbled/spoofed response can arrive after the timeout would
        # have fired (RTT beyond the timeout); never schedule into the past.
        if deadline < self.kernel.now:
            deadline = self.kernel.now
        self.kernel.call_at(deadline, self._timeout_fired)

    def _timeout_fired(self) -> None:
        resolver = self.resolver
        outcome = self.exch_outcome
        if outcome != "spoof_rejected":
            # Spoof rejections mirror the synchronous path: counted on
            # the resolver, no exchange record, no selector feedback.
            self.result.attempts += 1
            if resolver.record_exchanges:
                costs = resolver.telemetry.costs
                if costs.enabled:
                    costs.count("exchange_record")
                self.result.exchanges.append(
                    ExchangeRecord(self.address, None, True, "")
                )
            resolver.selector.on_timeout(
                self.address, self.addresses, resolver.infra_cache,
                self.kernel.now,
            )
        self._finish_exchange_span(outcome, None)
        self.attempt += 1
        if self.attempt > resolver.max_retries:
            self.result.rcode = Rcode.SERVFAIL
            self._complete()
            return
        self._send()

    def _on_trip(self, trip) -> None:
        resolver = self.resolver
        if trip.lost or trip.response is None:
            self._attempt_failed("timeout")
            return
        costs = resolver.telemetry.costs
        if costs.enabled:
            costs.count("decode")
        try:
            message = resolver._response_memo.decode(trip.response, self.sent_name)
        except Exception:
            self._attempt_failed("garbled")
            return
        if message.msg_id != self.msg_id:
            self._attempt_failed("id_mismatch")
            return
        if resolver.case_randomization and message.questions:
            if message.questions[0].name.labels != self.sent_name.labels:
                # Case mismatch: off-path spoof; discard the response.
                resolver.spoofs_rejected += 1
                self._attempt_failed("spoof_rejected")
                return
        now = self.kernel.now
        self.result.attempts += 1
        if resolver.record_exchanges:
            costs = resolver.telemetry.costs
            if costs.enabled:
                costs.count("exchange_record")
            self.result.exchanges.append(
                ExchangeRecord(self.address, trip.rtt_ms, False, trip.served_by)
            )
        resolver.selector.on_response(
            self.address, trip.rtt_ms, self.addresses, resolver.infra_cache, now
        )
        if resolver.telemetry.enabled:
            self.exch_span.set(
                site=trip.served_by, rtt_ms=round(trip.rtt_ms, 3)
            )
        self._finish_exchange_span("ok", trip.rtt_ms)
        self._handle_response(message, trip)

    def _handle_response(self, message: Message, trip) -> None:
        resolver = self.resolver
        result = self.result
        kind, referral, cut = resolver._classify_response(
            message, self.send_name, self.qname
        )
        address, served_by, rtt_ms = self.address, trip.served_by, trip.rtt_ms
        if kind == _NXDOMAIN:
            resolver._cache_negative(
                message, self.send_name, self.send_type, nxdomain=True
            )
            resolver._finalize(result, message, address, served_by, rtt_ms)
            result.rcode = Rcode.NXDOMAIN
            self._complete()
            return
        if kind == _ERROR:
            result.rcode = message.rcode
            resolver._finalize(result, message, address, served_by, rtt_ms)
            self._complete()
            return
        if kind == _REFERRAL:
            self.addresses = referral
            if cut is not None:
                self.current_zone = cut
            self._begin_iteration()
            return
        if kind == _DEAD_REFERRAL:
            # Mirror of the synchronous glueless-NS fetch: chase the NS
            # target names with child event-resolutions, sequentially,
            # so the seeded draw order matches the sync engine exactly.
            self._begin_ns_fetch(message, cut)
            return
        if kind == _DESCEND:
            self.current_zone = self.send_name
            self._begin_iteration()
            return
        if kind == _ANSWER:
            resolver.record_cache.put(
                self.qname, self.qtype, list(message.answers),
                resolver.network.clock.now,
            )
            resolver._finalize(result, message, address, served_by, rtt_ms)
            self._complete()
            return
        # NODATA: name exists but not this type.
        resolver._cache_negative(message, self.qname, self.qtype, nxdomain=False)
        resolver._finalize(result, message, address, served_by, rtt_ms)
        self._complete()

    # -- glueless-NS fetching ----------------------------------------------

    def _begin_ns_fetch(self, message: Message, cut: Name | None) -> None:
        resolver = self.resolver
        if self.depth >= MAX_FETCH_DEPTH:
            self.result.rcode = Rcode.SERVFAIL
            self._complete()
            return
        self.fetch_targets = resolver._capped_fetch_targets(
            resolver._referral_ns_targets(message),
            resolver.max_fetch_per_delegation,
            self.pending,
        )
        self.fetch_addresses = []
        self.fetch_cut = cut
        self._next_fetch()

    def _next_fetch(self) -> None:
        resolver = self.resolver
        while self.fetch_targets:
            if not resolver._fetch_budget_left(self.budget):
                break
            target = self.fetch_targets.pop(0)
            resolver._bill_ns_fetch(self.budget)
            sub_result = ResolutionResult(qname=target, qtype=RRType.A)
            start = resolver._resolution_prologue(
                target, RRType.A, RRClass.IN, self.span, sub_result
            )
            if start is None:
                # Cache hit (or immediate failure): harvest inline and
                # keep scanning — no kernel round needed.
                if self._harvest(sub_result):
                    break
                continue
            child = _EventResolution(
                resolver, self.kernel, target, RRType.A, self._fetch_done,
                self.span, sub_result,
                depth=self.depth + 1, budget=self.budget,
                pending=self.pending + (target,), emit_metrics=False,
            )
            child.current_zone, child.addresses = start
            child._begin_iteration()
            return
        self._finish_ns_fetch()

    def _fetch_done(self, sub_result: ResolutionResult) -> None:
        if self._harvest(sub_result):
            self._finish_ns_fetch()
            return
        self._next_fetch()

    def _harvest(self, sub_result: ResolutionResult) -> bool:
        self.fetch_addresses.extend(
            self.resolver._routable_answer_addresses(sub_result)
        )
        return bool(self.fetch_addresses)

    def _finish_ns_fetch(self) -> None:
        if self.fetch_addresses:
            self.addresses = self.fetch_addresses
            if self.fetch_cut is not None:
                self.current_zone = self.fetch_cut
            self._begin_iteration()
            return
        self.result.rcode = Rcode.SERVFAIL
        self._complete()

    # -- bookkeeping -------------------------------------------------------

    def _finish_exchange_span(self, outcome: str, rtt_ms: float | None) -> None:
        telemetry = self.resolver.telemetry
        if not telemetry.enabled:
            return
        span = self.exch_span
        span.set(outcome=outcome)
        if outcome == "ok":
            end = self.send_time + float(rtt_ms) / 1000.0
        else:
            end = self.send_time + self.resolver.timeout_ms / 1000.0
        telemetry.tracer.finish_span(span, at=end)
        telemetry.registry.counter(
            "resolver_exchanges_total",
            "exchange attempts against authoritatives, by outcome",
            ("outcome",),
        ).labels(outcome=outcome).inc()

    def _complete(self) -> None:
        resolver = self.resolver
        if resolver.telemetry.enabled and self.emit_metrics:
            resolver._emit_resolution_metrics(self.result, self.span)
        self.done(self.result)
