"""Windows-DNS-style selection: sticky fastest with periodic re-ranking.

Windows Server DNS measures each authoritative once, then locks onto the
fastest and keeps using it; it re-probes the full set only on a coarse
timer (modeled as ``reprobe_interval_s``) or when the favorite times out.
Between re-probes its preference is the strongest of all implementations.
"""

from __future__ import annotations

from .base import ServerSelector
from .infracache import InfrastructureCache


class WindowsSelector(ServerSelector):
    """Lock onto the fastest server; re-rank every ``reprobe_interval_s``."""

    name = "windows"

    reprobe_interval_s = 900.0
    alpha = 0.5

    def __init__(self, rng=None):
        super().__init__(rng)
        self._favorite: str | None = None
        self._next_reprobe_at = 0.0
        self._probing: list[str] = []

    def reset(self) -> None:
        self._favorite = None
        self._next_reprobe_at = 0.0
        self._probing = []

    def select(
        self, addresses: list[str], cache: InfrastructureCache, now: float
    ) -> str:
        if now >= self._next_reprobe_at:
            # Begin a probe round: visit every server once, then re-rank.
            self._probing = [
                addr for addr in addresses if cache.srtt(addr, now) is None
            ] or list(addresses)
            self.rng.shuffle(self._probing)
            self._next_reprobe_at = now + self.reprobe_interval_s
            self._favorite = None
        if self._probing:
            return self._probing.pop()
        if self._favorite is None or self._favorite not in addresses:
            measured = [addr for addr in addresses if cache.srtt(addr, now) is not None]
            pool = measured or addresses
            self._favorite = min(
                pool, key=lambda addr: cache.srtt(addr, now) or float("inf")
            )
        return self._favorite

    def on_response(self, address, rtt_ms, addresses, cache, now) -> None:
        cache.observe_rtt(address, rtt_ms, now, alpha=self.alpha)

    def on_timeout(self, address, addresses, cache, now) -> None:
        cache.observe_timeout(address, now)
        if address == self._favorite:
            self._favorite = None  # fail over immediately
