"""Server-selection interface.

A :class:`ServerSelector` decides, per outgoing query, which of a zone's
authoritative addresses to contact, and learns from the outcome.  One
selector instance belongs to one recursive resolver (its state *is* the
resolver's preference).
"""

from __future__ import annotations

import abc
import random

from ..seeding import default_rng
from ..telemetry import NULL_TELEMETRY
from .infracache import InfrastructureCache


class ServerSelector(abc.ABC):
    """Strategy for choosing among a zone's authoritative addresses."""

    #: short identifier used in population mixes and reports
    name: str = "abstract"
    #: whether the implementation keeps an infrastructure cache at all
    uses_infra_cache: bool = True
    #: telemetry bundle; the owning resolver overwrites this when it is
    #: itself instrumented (class-level default keeps it zero-cost)
    telemetry = NULL_TELEMETRY

    def __init__(self, rng: random.Random | None = None):
        # Namespaced per selector family: two different selector classes
        # falling back to the default must not tie-break identically
        # (the old Random(0) default synchronized them).
        self.rng = (
            rng if rng is not None
            else default_rng("resolvers.selector", type(self).name)
        )

    @abc.abstractmethod
    def select(
        self, addresses: list[str], cache: InfrastructureCache, now: float
    ) -> str:
        """Pick the authoritative address for the next query."""

    def on_response(
        self,
        address: str,
        rtt_ms: float,
        addresses: list[str],
        cache: InfrastructureCache,
        now: float,
    ) -> None:
        """Fold a successful exchange into the selector's state."""
        cache.observe_rtt(address, rtt_ms, now)
        if self.telemetry.enabled:
            self.telemetry.registry.counter(
                "selector_events_total",
                "selection-feedback events, by selector family and kind",
                ("selector", "event"),
            ).labels(selector=self.name, event="response").inc()

    def on_timeout(
        self,
        address: str,
        addresses: list[str],
        cache: InfrastructureCache,
        now: float,
    ) -> None:
        """Fold a timeout into the selector's state."""
        cache.observe_timeout(address, now)
        if self.telemetry.enabled:
            self.telemetry.registry.counter(
                "selector_events_total",
                "selection-feedback events, by selector family and kind",
                ("selector", "event"),
            ).labels(selector=self.name, event="timeout").inc()

    def reset(self) -> None:
        """Forget per-zone transient state (not the infra cache)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
