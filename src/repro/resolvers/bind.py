"""BIND-style selection: smoothed RTT with decay of unused servers.

BIND 9 keeps an SRTT per server in its address database (ADB) and sends
each query to the server with the lowest SRTT.  Two details keep it from
locking on forever: servers it has never tried get a small random SRTT so
they are probed early, and every time a server is *not* chosen its SRTT
is multiplicatively decayed, so a neglected server eventually looks
attractive again.  Entries age out of the ADB after ~10 minutes [3].
"""

from __future__ import annotations

from .base import ServerSelector
from .infracache import InfrastructureCache


class BindSelector(ServerSelector):
    """Lowest-SRTT selection with 0.98 decay of the unchosen (BIND 9)."""

    name = "bind"

    #: fresh servers draw an SRTT in [0, untried_max_ms) so they win once
    untried_max_ms = 10.0
    #: EWMA weight of a new sample
    alpha = 0.3

    def __init__(self, rng=None, decay_factor: float = 0.98):
        super().__init__(rng)
        #: multiplicative decay applied to servers that were not selected
        self.decay_factor = decay_factor

    def select(
        self, addresses: list[str], cache: InfrastructureCache, now: float
    ) -> str:
        best_address: str | None = None
        best_srtt = float("inf")
        for address in addresses:
            srtt = cache.srtt(address, now)
            if srtt is None:
                stale = cache.stale_entry(address, now)
                if stale is not None:
                    # ADB entry expired, but the implementation retains
                    # latency history — the behavior behind the paper's
                    # §4.4 finding that preferences outlive the timeout.
                    srtt = stale.srtt_ms
                else:
                    # Never tried: seed a small random SRTT so the server
                    # is probed ahead of everything already measured.
                    srtt = self.rng.uniform(0.0, self.untried_max_ms)
                cache.observe_rtt(address, srtt, now, alpha=1.0)
            if srtt < best_srtt:
                best_srtt = srtt
                best_address = address
        assert best_address is not None
        for address in addresses:
            if address != best_address:
                cache.decay(address, now, self.decay_factor)
        return best_address

    def on_response(self, address, rtt_ms, addresses, cache, now) -> None:
        cache.observe_rtt(address, rtt_ms, now, alpha=self.alpha)
