"""Unbound-style selection: uniform within an RTT band of the fastest.

Unbound keeps smoothed RTT estimates per server (infra cache, ~15 min
TTL [30]) and, when choosing, picks uniformly at random among all servers
whose estimate lies within ``band_ms`` (400 ms in unbound) of the best.
The consequence the paper observes: when all of a zone's servers are
within 400 ms of each other, Unbound spreads queries almost evenly, and
only very distant servers are avoided.  Unknown servers are assigned the
UNKNOWN_SERVER_NICENESS default (376 ms) so they are explored without
being favored.
"""

from __future__ import annotations

from .base import ServerSelector
from .infracache import InfrastructureCache


class UnboundSelector(ServerSelector):
    """Random choice within a 400 ms band of the fastest server (Unbound)."""

    name = "unbound"

    #: servers within this much of the best RTT are eligible
    band_ms = 400.0
    #: RTT assumed for servers never measured (unbound's 376 ms default)
    unknown_ms = 376.0
    #: EWMA weight of a new sample
    alpha = 0.5

    def _estimate(self, address: str, cache: InfrastructureCache, now: float) -> float:
        srtt = cache.srtt(address, now)
        return self.unknown_ms if srtt is None else srtt

    def select(
        self, addresses: list[str], cache: InfrastructureCache, now: float
    ) -> str:
        estimates = {
            address: self._estimate(address, cache, now) for address in addresses
        }
        best = min(estimates.values())
        eligible = [
            address for address, est in estimates.items() if est <= best + self.band_ms
        ]
        return self.rng.choice(eligible)

    def on_response(self, address, rtt_ms, addresses, cache, now) -> None:
        cache.observe_rtt(address, rtt_ms, now, alpha=self.alpha)

    def on_timeout(self, address, addresses, cache, now) -> None:
        # Unbound doubles the RTT estimate on timeout (capped by the cache).
        cache.observe_timeout(address, now, floor_ms=self.unknown_ms)
