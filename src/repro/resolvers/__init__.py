"""Recursive resolver models: caches, selection algorithms, resolution."""

from .base import ServerSelector
from .bind import BindSelector
from .forwarder import DnsForwarder, ForwardPolicy
from .infracache import InfraEntry, InfrastructureCache
from .naive import RandomSelector, RoundRobinSelector, StickySelector
from .population import (
    DEFAULT_MIX,
    INFRA_TTL_S,
    SELECTOR_CLASSES,
    PopulationSample,
    ResolverPopulation,
)
from .powerdns import PowerDnsSelector
from .resolver import ExchangeRecord, RecursiveResolver, ResolutionResult
from .rrcache import CacheEntry, NegativeEntry, RecordCache
from .unbound import UnboundSelector
from .windows import WindowsSelector

__all__ = [
    "BindSelector",
    "CacheEntry",
    "DEFAULT_MIX",
    "DnsForwarder",
    "ExchangeRecord",
    "ForwardPolicy",
    "INFRA_TTL_S",
    "InfraEntry",
    "InfrastructureCache",
    "NegativeEntry",
    "PopulationSample",
    "PowerDnsSelector",
    "RandomSelector",
    "RecordCache",
    "RecursiveResolver",
    "ResolutionResult",
    "ResolverPopulation",
    "RoundRobinSelector",
    "SELECTOR_CLASSES",
    "ServerSelector",
    "StickySelector",
    "UnboundSelector",
    "WindowsSelector",
]
