"""DNS forwarders / middleboxes (the MI boxes of the paper's Figure 1).

Home routers and enterprise load balancers sit between stub clients and
recursive resolvers.  A :class:`DnsForwarder` relays queries to one or
more upstream recursives — which makes one probe's traffic appear at the
authoritatives from *several* recursive addresses, and can warm caches
the client never sees.  The paper checks (§3.1) that these effects do
not distort its analysis; :mod:`repro.analysis.validation` reproduces
that check.
"""

from __future__ import annotations

import enum
import random

from ..dns.name import Name
from ..seeding import default_rng
from ..dns.types import RRClass, RRType
from .resolver import RecursiveResolver, ResolutionResult
from .rrcache import RecordCache


class ForwardPolicy(enum.Enum):
    """How a forwarder spreads queries over its upstream recursives."""

    PRIMARY_FAILOVER = "primary"   # first upstream until it fails
    ROUND_ROBIN = "roundrobin"     # strict rotation
    RANDOM = "random"              # uniform per query


class DnsForwarder:
    """A middlebox relaying client queries to upstream recursives.

    The forwarder may keep its own small record cache (most CPE does),
    which serves repeat queries without consulting any upstream —
    exactly the cache-warming interference the paper defeats with
    unique labels.
    """

    def __init__(
        self,
        address: str,
        upstreams: list[RecursiveResolver],
        policy: ForwardPolicy = ForwardPolicy.PRIMARY_FAILOVER,
        cache_enabled: bool = True,
        rng: random.Random | None = None,
    ):
        if not upstreams:
            raise ValueError("a forwarder needs at least one upstream")
        self.address = address
        self.upstreams = list(upstreams)
        self.policy = policy
        self.cache = RecordCache(max_entries=1000) if cache_enabled else None
        # Keyed by the forwarder's own address: distinct middleboxes must
        # not rotate/choose upstreams in lockstep.
        self.rng = (
            rng if rng is not None
            else default_rng("resolvers.forwarder", address)
        )
        self._rr_index = self.rng.randrange(len(upstreams))
        self._primary_index = 0
        self.forwarded = 0
        self.served_from_cache = 0

    def _pick_upstream(self) -> tuple[int, RecursiveResolver]:
        if self.policy is ForwardPolicy.ROUND_ROBIN:
            index = self._rr_index % len(self.upstreams)
            self._rr_index += 1
        elif self.policy is ForwardPolicy.RANDOM:
            index = self.rng.randrange(len(self.upstreams))
        else:
            index = self._primary_index
        return index, self.upstreams[index]

    def resolve(
        self,
        qname: Name | str,
        qtype: RRType,
        rrclass: RRClass = RRClass.IN,
    ) -> ResolutionResult:
        """Answer from the forwarder cache or relay to an upstream."""
        if isinstance(qname, str):
            qname = Name.from_text(qname)
        now = self.upstreams[0].network.clock.now
        if self.cache is not None and rrclass == RRClass.IN:
            entry = self.cache.get(qname, qtype, now)
            if entry is not None:
                self.served_from_cache += 1
                result = ResolutionResult(qname=qname, qtype=qtype)
                from ..dns.types import Rcode

                result.rcode = Rcode.NOERROR
                result.answers = list(entry.records)
                result.from_cache = True
                return result

        index, upstream = self._pick_upstream()
        result = upstream.resolve(qname, qtype, rrclass)
        self.forwarded += 1
        if (
            result.rcode is not None
            and not result.succeeded
            and self.policy is ForwardPolicy.PRIMARY_FAILOVER
            and len(self.upstreams) > 1
        ):
            from ..dns.types import Rcode

            if result.rcode == Rcode.SERVFAIL:
                # Fail over to the next upstream and retry once.
                self._primary_index = (index + 1) % len(self.upstreams)
                upstream = self.upstreams[self._primary_index]
                result = upstream.resolve(qname, qtype, rrclass)
                self.forwarded += 1

        if (
            self.cache is not None
            and rrclass == RRClass.IN
            and result.succeeded
            and not result.from_cache
        ):
            self.cache.put(qname, qtype, list(result.answers), now)
        return result
