"""Resolver population model: the mix of implementations in the wild.

The paper cannot see which software each recursive runs (middleboxes,
§3.1), only the aggregate behavior.  Yu et al. [33] found roughly half of
implementations select by latency and the rest spread queries randomly or
stick to a server.  :data:`DEFAULT_MIX` encodes a mix consistent with
both: it reproduces the paper's weak/strong preference fractions when run
through the Table 1 configurations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..seeding import default_rng, derive_rng
from .base import ServerSelector
from .bind import BindSelector
from .naive import RandomSelector, RoundRobinSelector, StickySelector
from .powerdns import PowerDnsSelector
from .unbound import UnboundSelector
from .windows import WindowsSelector

SELECTOR_CLASSES: dict[str, type[ServerSelector]] = {
    cls.name: cls
    for cls in (
        BindSelector,
        UnboundSelector,
        PowerDnsSelector,
        WindowsSelector,
        RandomSelector,
        RoundRobinSelector,
        StickySelector,
    )
}

#: Latency-driven implementations (BIND, PowerDNS, Windows) ≈ half of the
#: population, per Yu et al.; Unbound behaves uniformly inside its 400 ms
#: band; the rest are cache-less forwarders.
DEFAULT_MIX: dict[str, float] = {
    "bind": 0.28,
    "powerdns": 0.12,
    "windows": 0.09,
    "unbound": 0.25,
    "random": 0.15,
    "roundrobin": 0.05,
    "sticky": 0.06,
}

#: Infrastructure-cache TTLs per implementation, seconds (§4.4: BIND ~10
#: minutes [3], Unbound ~15 minutes [30]; cache-less entries are moot).
INFRA_TTL_S: dict[str, float] = {
    "bind": 600.0,
    "powerdns": 600.0,
    "windows": 900.0,
    "unbound": 900.0,
    "random": 600.0,
    "roundrobin": 600.0,
    "sticky": 600.0,
}


@dataclass(frozen=True)
class PopulationSample:
    """One drawn resolver implementation."""

    impl_name: str
    selector: ServerSelector
    infra_ttl_s: float


class ResolverPopulation:
    """Draws resolver implementations according to a weighted mix."""

    def __init__(
        self,
        mix: dict[str, float] | None = None,
        rng: random.Random | None = None,
        selector_overrides: dict[str, dict] | None = None,
        seed: int | None = None,
    ):
        self.mix = dict(DEFAULT_MIX if mix is None else mix)
        self.selector_overrides = dict(selector_overrides or {})
        unknown = set(self.mix) - set(SELECTOR_CLASSES)
        if unknown:
            raise ValueError(f"unknown selector names in mix: {sorted(unknown)}")
        total = sum(self.mix.values())
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        self.mix = {name: weight / total for name, weight in self.mix.items()}
        if rng is None:
            rng = (
                derive_rng(seed, "population.shared")
                if seed is not None
                else default_rng("resolvers.population")
            )
        self.rng = rng

    def sample(self, rng: random.Random | None = None) -> PopulationSample:
        """Draw one implementation and instantiate its selector.

        Pass a per-entity ``rng`` (derived from a seed path) to make the
        draw independent of every other sample — the sharded experiment
        engine relies on this; the shared fallback stream remains for
        callers that own the whole draw order.
        """
        rng = rng if rng is not None else self.rng
        names = list(self.mix)
        weights = [self.mix[name] for name in names]
        name = rng.choices(names, weights=weights, k=1)[0]
        selector = SELECTOR_CLASSES[name](
            rng=random.Random(rng.randrange(2**63)),
            **self.selector_overrides.get(name, {}),
        )
        return PopulationSample(
            impl_name=name,
            selector=selector,
            infra_ttl_s=INFRA_TTL_S.get(name, 600.0),
        )

    def sample_many(self, count: int) -> list[PopulationSample]:
        return [self.sample() for _ in range(count)]
