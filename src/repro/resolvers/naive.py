"""Cache-less selection strategies: random, round-robin, and sticky.

Embedded forwarders (home routers, CPE) often have no infrastructure
cache at all (§2).  Three behaviors cover what testbeds observe:
uniform random per query, strict rotation, and "sticky" — pick one
server and stay with it until it fails.
"""

from __future__ import annotations

from .base import ServerSelector
from .infracache import InfrastructureCache


class RandomSelector(ServerSelector):
    """Uniform random choice per query (djbdns dnscache behavior)."""

    name = "random"
    uses_infra_cache = False

    def select(
        self, addresses: list[str], cache: InfrastructureCache, now: float
    ) -> str:
        return self.rng.choice(addresses)


class RoundRobinSelector(ServerSelector):
    """Strict rotation over the address list."""

    name = "roundrobin"
    uses_infra_cache = False

    def __init__(self, rng=None):
        super().__init__(rng)
        self._index: int | None = None

    def reset(self) -> None:
        self._index = None

    def select(
        self, addresses: list[str], cache: InfrastructureCache, now: float
    ) -> str:
        if self._index is None:
            # Start at a random position so a population of round-robin
            # resolvers does not move in lockstep.
            self._index = self.rng.randrange(len(addresses))
        address = addresses[self._index % len(addresses)]
        self._index += 1
        return address


class StickySelector(ServerSelector):
    """Pick one server (at random) and never leave it unless it times out.

    This is the dnsmasq-like behavior that produces *strong* preferences
    uncorrelated with latency — visible in Figure 4 as VPs pinned to the
    slower authoritative.
    """

    name = "sticky"
    uses_infra_cache = False

    #: consecutive failures of the current server before switching —
    #: isolated packet loss does not move a dnsmasq-style forwarder
    failure_streak_to_switch = 3

    def __init__(self, rng=None):
        super().__init__(rng)
        self._choice: str | None = None
        self._failures = 0

    def reset(self) -> None:
        self._choice = None
        self._failures = 0

    def select(
        self, addresses: list[str], cache: InfrastructureCache, now: float
    ) -> str:
        if self._choice is None or self._choice not in addresses:
            self._choice = self.rng.choice(addresses)
        return self._choice

    def on_response(self, address, rtt_ms, addresses, cache, now) -> None:
        super().on_response(address, rtt_ms, addresses, cache, now)
        if address == self._choice:
            self._failures = 0

    def on_timeout(self, address, addresses, cache, now) -> None:
        super().on_timeout(address, addresses, cache, now)
        if address == self._choice:
            self._failures += 1
            if self._failures >= self.failure_streak_to_switch:
                alternatives = [addr for addr in addresses if addr != address]
                self._choice = (
                    self.rng.choice(alternatives) if alternatives else None
                )
                self._failures = 0
