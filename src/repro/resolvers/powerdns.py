"""PowerDNS-Recursor-style selection: fastest with periodic speed tests.

The PowerDNS recursor keeps decaying latency averages ("speedtests") per
server and sends to the fastest, but roughly one query in sixteen goes to
a different server to refresh its measurement.  The result is a strong
latency preference with a steady trickle to the others — one of the
clearly RTT-driven populations in Yu et al. [33].
"""

from __future__ import annotations

from .base import ServerSelector
from .infracache import InfrastructureCache


class PowerDnsSelector(ServerSelector):
    """Lowest decayed-average RTT, with a 1/16 exploration probe."""

    name = "powerdns"

    #: EWMA weight of a new sample
    alpha = 0.4

    def __init__(self, rng=None, explore_probability: float = 1.0 / 16.0):
        super().__init__(rng)
        #: probability that a query is a speed-test of a non-best server
        self.explore_probability = explore_probability

    def _estimate(self, address: str, cache: InfrastructureCache, now: float) -> float | None:
        srtt = cache.srtt(address, now)
        if srtt is not None:
            return srtt
        # PowerDNS decays speedtest values rather than discarding them;
        # an expired infra entry still orders the servers.
        stale = cache.stale_entry(address, now)
        return stale.srtt_ms if stale is not None else None

    def select(
        self, addresses: list[str], cache: InfrastructureCache, now: float
    ) -> str:
        unknown = [
            addr for addr in addresses if self._estimate(addr, cache, now) is None
        ]
        if unknown:
            return self.rng.choice(unknown)
        best = min(addresses, key=lambda addr: self._estimate(addr, cache, now))
        others = [addr for addr in addresses if addr != best]
        if others and self.rng.random() < self.explore_probability:
            return self.rng.choice(others)
        return best

    def on_response(self, address, rtt_ms, addresses, cache, now) -> None:
        cache.observe_rtt(address, rtt_ms, now, alpha=self.alpha)
