"""Record cache with TTL expiry, including negative caching (RFC 2308).

The paper defeats this cache with unique labels and a 5-second TTL; the
passive-trace generators rely on it to reproduce warm-cache behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dns.name import Name
from ..dns.records import ResourceRecord
from ..dns.types import RRType


@dataclass
class CacheEntry:
    """Positive entry: the records and when they expire."""

    records: list[ResourceRecord]
    expires_at: float


@dataclass
class NegativeEntry:
    """Negative entry: NXDOMAIN or NODATA, per RFC 2308."""

    nxdomain: bool
    expires_at: float


@dataclass
class RecordCache:
    """TTL-driven cache of positive and negative answers.

    Expiry can be keyed off a bound simulation clock
    (:meth:`bind_clock` + :meth:`lookup`/:meth:`lookup_negative`): the
    resolver binds its network's clock once and lookups read
    ``clock.now`` — a plain attribute kept current by the event kernel's
    heap — instead of threading a ``now`` argument through every call.
    The explicit-``now`` methods remain for unbound use.
    """

    max_entries: int = 100_000
    _positive: dict[tuple[Name, RRType], CacheEntry] = field(default_factory=dict)
    _negative: dict[tuple[Name, RRType], NegativeEntry] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    clock: object | None = None

    def bind_clock(self, clock) -> None:
        """Key expiry off ``clock.now`` for the bound-lookup methods."""
        self.clock = clock

    def lookup(self, name: Name, rrtype: RRType) -> CacheEntry | None:
        """Positive lookup at the bound clock's current instant."""
        return self.get(name, rrtype, self.clock.now)

    def lookup_negative(self, name: Name, rrtype: RRType) -> NegativeEntry | None:
        """Negative lookup at the bound clock's current instant."""
        return self.get_negative(name, rrtype, self.clock.now)

    def get(self, name: Name, rrtype: RRType, now: float) -> CacheEntry | None:
        entry = self._positive.get((name, rrtype))
        if entry is None:
            self.misses += 1
            return None
        if now >= entry.expires_at:
            del self._positive[(name, rrtype)]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def get_negative(self, name: Name, rrtype: RRType, now: float) -> NegativeEntry | None:
        entry = self._negative.get((name, rrtype))
        if entry is None:
            return None
        if now >= entry.expires_at:
            del self._negative[(name, rrtype)]
            return None
        return entry

    def put(
        self, name: Name, rrtype: RRType, records: list[ResourceRecord], now: float
    ) -> None:
        """Cache a positive answer for min(record TTLs) seconds."""
        if not records:
            return
        if len(self._positive) >= self.max_entries:
            self._evict(now)
        ttl = min(record.ttl for record in records)
        self._positive[(name, rrtype)] = CacheEntry(records, now + ttl)
        self._negative.pop((name, rrtype), None)

    def put_negative(
        self, name: Name, rrtype: RRType, nxdomain: bool, ttl: int, now: float
    ) -> None:
        self._negative[(name, rrtype)] = NegativeEntry(nxdomain, now + ttl)

    def _evict(self, now: float) -> None:
        """Drop expired entries; if still full, drop the oldest-expiring."""
        expired = [key for key, entry in self._positive.items() if now >= entry.expires_at]
        for key in expired:
            del self._positive[key]
        while len(self._positive) >= self.max_entries:
            victim = min(self._positive, key=lambda key: self._positive[key].expires_at)
            del self._positive[victim]

    def flush(self) -> None:
        self._positive.clear()
        self._negative.clear()

    def __len__(self) -> int:
        return len(self._positive)
