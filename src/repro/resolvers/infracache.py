"""Infrastructure cache: per-authoritative latency bookkeeping (§2).

Recursive resolvers remember, per authoritative *address*, a smoothed
round-trip time (SRTT).  BIND keeps entries for about 10 minutes,
Unbound for about 15; entries that expire are forgotten and the server
looks new again.  The paper's §4.4 measures exactly this expiry
behavior, so the cache models per-entry TTL explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class InfraEntry:
    """Latency state for one authoritative server address."""

    srtt_ms: float
    updated_at: float
    expires_at: float
    samples: int = 0
    timeouts: int = 0

    def expired(self, now: float) -> bool:
        """True once ``now`` reaches ``expires_at`` (boundary is expired)."""
        return now >= self.expires_at


@dataclass
class InfrastructureCache:
    """SRTT store with per-entry expiry.

    Parameters
    ----------
    ttl_s:
        Entry lifetime from the last update.  BIND's ADB uses ~600 s,
        Unbound ~900 s.
    """

    ttl_s: float = 600.0
    _entries: dict[str, InfraEntry] = field(default_factory=dict)

    def get(self, address: str, now: float) -> InfraEntry | None:
        """The live entry for an address, or None if absent/expired.

        Expired entries are not returned but are retained as *stale*
        hints (see :meth:`stale_entry`): the paper's §4.4 observes that
        preferences survive the documented cache timeouts, which real
        implementations achieve by not fully discarding latency history.
        """
        entry = self._entries.get(address)
        if entry is None or entry.expired(now):
            return None
        return entry

    #: canonical accessor name; every liveness-respecting read goes
    #: through this so expiry semantics cannot drift between accessors.
    def entry(self, address: str, now: float) -> InfraEntry | None:
        """Alias of :meth:`get` — the live entry, or None if expired."""
        return self.get(address, now)

    def stale_entry(self, address: str, now: float) -> InfraEntry | None:
        """The last known entry even if expired (None if never observed)."""
        return self._entries.get(address)

    def srtt(self, address: str, now: float) -> float | None:
        """The live SRTT — exactly when :meth:`entry` returns an entry.

        An address whose entry has reached ``expires_at`` reports None
        here too; it never serves a latency figure :meth:`entry` would
        reject as expired.
        """
        entry = self.entry(address, now)
        return entry.srtt_ms if entry is not None else None

    def observe_rtt(
        self, address: str, rtt_ms: float, now: float, alpha: float = 0.3
    ) -> InfraEntry:
        """Fold one RTT sample into the SRTT: new = α·sample + (1-α)·old."""
        entry = self.get(address, now)
        if entry is None:
            entry = InfraEntry(
                srtt_ms=rtt_ms, updated_at=now, expires_at=now + self.ttl_s, samples=1
            )
            self._entries[address] = entry
            return entry
        entry.srtt_ms = alpha * rtt_ms + (1.0 - alpha) * entry.srtt_ms
        entry.updated_at = now
        entry.expires_at = now + self.ttl_s
        entry.samples += 1
        return entry

    def observe_timeout(
        self, address: str, now: float, floor_ms: float = 400.0
    ) -> InfraEntry:
        """Penalize a timed-out server: double its SRTT (with a floor)."""
        entry = self.get(address, now)
        if entry is None:
            entry = InfraEntry(
                srtt_ms=floor_ms, updated_at=now, expires_at=now + self.ttl_s
            )
            self._entries[address] = entry
        else:
            entry.srtt_ms = max(entry.srtt_ms * 2.0, floor_ms)
            entry.updated_at = now
            entry.expires_at = now + self.ttl_s
        entry.timeouts += 1
        return entry

    def decay(self, address: str, now: float, factor: float = 0.98) -> None:
        """Decay an (unselected) server's SRTT so it gets re-probed (BIND)."""
        entry = self.get(address, now)
        if entry is not None:
            entry.srtt_ms *= factor

    def forget(self, address: str) -> None:
        self._entries.pop(address, None)

    def clear(self) -> None:
        self._entries.clear()

    def known_addresses(self, now: float) -> list[str]:
        return [addr for addr in list(self._entries) if self.get(addr, now)]

    def live_count(self, now: float) -> int:
        """Entries :meth:`entry` would still serve at ``now``."""
        return len(self.known_addresses(now))

    def __len__(self) -> int:
        """Stored entries, *including* expired-but-retained stale hints."""
        return len(self._entries)
