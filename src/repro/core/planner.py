"""Deployment planner: the paper's §7 recommendation, made executable.

Given a candidate NS-set design (which authoritatives are unicast, which
are anycast and where), and a client population, the planner computes the
latency a recursive population will actually experience — using the
paper's central finding that *every* NS keeps receiving queries: roughly
half of recursives chase the fastest NS, the rest spread queries.

The headline metric is therefore not "latency of the best NS" but the
selection-weighted expectation, and the worst-case is bounded by the
slowest NS — the least-anycast one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, median

from ..atlas.probes import Probe
from ..netsim.anycast import AnycastGroup, AnycastSite
from ..netsim.geo import DATACENTERS, Location
from ..netsim.latency import LatencyModel
from .deployment import AuthoritativeSpec


@dataclass(frozen=True)
class SelectionModel:
    """Aggregate recursive behavior, distilled from §4.

    ``latency_sensitive_share`` of queries go to the lowest-RTT NS; the
    remainder are spread uniformly over all NSes.  Defaults follow the
    paper's observation that about half of recursives prefer by latency
    and most recursives send some queries everywhere.
    """

    latency_sensitive_share: float = 0.5

    def ns_weights(self, rtts: list[float]) -> list[float]:
        """Fraction of a client's queries that each NS receives."""
        if not rtts:
            raise ValueError("no name servers")
        count = len(rtts)
        uniform = (1.0 - self.latency_sensitive_share) / count
        weights = [uniform] * count
        weights[rtts.index(min(rtts))] += self.latency_sensitive_share
        return weights


@dataclass
class ClientLatency:
    """Latency figures for one client under one design."""

    expected_ms: float   # selection-weighted mean over NSes
    best_ms: float       # the fastest NS (ideal recursive)
    worst_ms: float      # the slowest NS (tail queries land here)


@dataclass
class DeploymentEvaluation:
    """Population-level latency summary for one design."""

    name: str
    specs: list[AuthoritativeSpec]
    clients: int
    mean_expected_ms: float
    median_expected_ms: float
    p90_expected_ms: float
    mean_best_ms: float
    mean_worst_ms: float
    per_client: list[ClientLatency] = field(repr=False, default_factory=list)

    @property
    def anycast_count(self) -> int:
        return sum(spec.is_anycast for spec in self.specs)


def _percentile(values: list[float], q: float) -> float:
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class DeploymentPlanner:
    """Evaluates and ranks NS-set designs for a client population."""

    def __init__(
        self,
        clients: list[Probe],
        latency: LatencyModel | None = None,
        selection: SelectionModel | None = None,
    ):
        if not clients:
            raise ValueError("planner needs at least one client")
        self.clients = clients
        self.latency = latency if latency is not None else LatencyModel()
        self.selection = selection if selection is not None else SelectionModel()

    # -- RTT building blocks ------------------------------------------------

    def ns_rtt_ms(
        self, client: Probe, spec: AuthoritativeSpec, ns_index: int
    ) -> float:
        """Deterministic RTT from a client to one NS of the design."""
        if not spec.is_anycast:
            site = DATACENTERS[spec.sites[0]]
            return self.latency.base_rtt_ms(client.location.point, site.point)
        group = AnycastGroup(f"planner-{ns_index}", suboptimal_rate=spec.suboptimal_rate)
        for code in spec.sites:
            group.add_site(AnycastSite(code, DATACENTERS[code], lambda *a: None))
        site = group.catchment(client.location, client.address, self.latency)
        return self.latency.base_rtt_ms(client.location.point, site.location.point)

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self, specs: list[AuthoritativeSpec], name: str = "design"
    ) -> DeploymentEvaluation:
        per_client: list[ClientLatency] = []
        for client in self.clients:
            rtts = [
                self.ns_rtt_ms(client, spec, index)
                for index, spec in enumerate(specs)
            ]
            weights = self.selection.ns_weights(rtts)
            expected = sum(w * rtt for w, rtt in zip(weights, rtts))
            per_client.append(
                ClientLatency(
                    expected_ms=expected, best_ms=min(rtts), worst_ms=max(rtts)
                )
            )
        expected = [c.expected_ms for c in per_client]
        return DeploymentEvaluation(
            name=name,
            specs=list(specs),
            clients=len(per_client),
            mean_expected_ms=mean(expected),
            median_expected_ms=median(expected),
            p90_expected_ms=_percentile(expected, 0.90),
            mean_best_ms=mean(c.best_ms for c in per_client),
            mean_worst_ms=mean(c.worst_ms for c in per_client),
            per_client=per_client,
        )

    def rank(
        self, designs: dict[str, list[AuthoritativeSpec]]
    ) -> list[DeploymentEvaluation]:
        """Evaluate every design, best mean expected latency first."""
        evaluations = [
            self.evaluate(specs, name=name) for name, specs in designs.items()
        ]
        evaluations.sort(key=lambda ev: ev.mean_expected_ms)
        return evaluations

    def recommend(
        self, designs: dict[str, list[AuthoritativeSpec]]
    ) -> DeploymentEvaluation:
        """The design a DNS operator should deploy (lowest expected latency)."""
        return self.rank(designs)[0]


def sidn_style_designs(
    anycast_sites: tuple[str, ...] = ("FRA", "IAD", "SYD", "GRU"),
    home_site: str = "FRA",
    ns_count: int = 4,
    suboptimal_rate: float = 0.0,
) -> dict[str, list[AuthoritativeSpec]]:
    """The §7 case study as a design sweep: 0..ns_count anycast NSes.

    ``all-unicast`` models the .nl situation the paper critiques (all
    NSes at home); each step converts one more unicast NS into an anycast
    service; ``all-anycast`` is the paper's recommendation.  The default
    assumes well-engineered anycast (every client reaches its nearest
    site, per Schmidt et al. [25]); raise ``suboptimal_rate`` to study
    imperfect catchments (the ablation in ``bench_rec_planner``).
    """
    designs: dict[str, list[AuthoritativeSpec]] = {}
    for anycast_count in range(ns_count + 1):
        specs = []
        for index in range(ns_count):
            if index < anycast_count:
                specs.append(
                    AuthoritativeSpec(
                        name=f"ns{index + 1}",
                        sites=anycast_sites,
                        suboptimal_rate=suboptimal_rate,
                    )
                )
            else:
                specs.append(
                    AuthoritativeSpec(name=f"ns{index + 1}", sites=(home_site,))
                )
        if anycast_count == 0:
            label = "all-unicast"
        elif anycast_count == ns_count:
            label = "all-anycast"
        else:
            label = f"{anycast_count}-of-{ns_count}-anycast"
        designs[label] = specs
    return designs
