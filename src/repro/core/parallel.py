"""Sharded parallel experiment engine (scatter-gather).

A campaign over N probes is embarrassingly parallel *if* no random
stream and no piece of shared state crosses probe boundaries.  PR 3
made that true: every stochastic decision in the simulator derives
from ``(seed, path)`` (see :mod:`repro.seeding`), vantage-point ids
and resolver addresses are computed from the probe alone, and the only
cross-probe coupling left — resolver sharing — is scoped to one AS.

This module exploits it.  :func:`run_parallel` partitions the probe
population into shards *by ASN* (an AS never straddles shards, so the
per-AS sharing state each worker sees matches the serial build), runs
one :class:`~repro.core.experiment.TestbedExperiment` per shard in a
spawn-safe ``multiprocessing`` worker, and scatter-gathers the pieces
back through mergeable reducers:

observations
    concatenated and sorted by ``(timestamp, vp_id)`` — exactly the
    serial emission order (tick-major, vp ascending).
metrics
    :meth:`MetricsRegistry.merge`: counters/gauges add, histogram
    sketches add per-bucket counts and take min/max envelopes.
event log
    per-worker records are shard-tagged in flight and normalized on
    merge (:func:`~repro.telemetry.events.normalize_trace_records`):
    traces sort by content, tracer-private ids are renumbered, and
    wall-clock profile events are dropped — so the merged log is
    byte-identical for any worker count, including one.

The invariant — serial and K-worker runs produce identical merged
analysis output for any K — is what makes ``--workers`` safe to flip
on without re-validating any result.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

from pathlib import Path

from ..atlas.probes import Probe, ProbeGenerator
from ..seeding import derive
from ..telemetry import (
    CostLedger,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_TELEMETRY,
    Note,
    NullRegistry,
    NullTracer,
    RawEvent,
    RecordingEventSink,
    RunMeta,
    RunProfiler,
    SpillingEventSink,
    Telemetry,
    Tracer,
    iter_raw_records,
    normalize_trace_records,
    span_from_dict,
)
from .experiment import ExperimentConfig, TestbedExperiment
from .store import MeasurementRun, ObservationStore


@dataclass
class ParallelExperimentResult:
    """Merged outputs of one sharded campaign.

    Mirrors :class:`~repro.core.experiment.ExperimentResult` for the
    fields analyses consume; adds the scatter-gather bookkeeping.
    """

    config: ExperimentConfig
    run: MeasurementRun
    addresses: list[str]
    site_of_address: dict[str, str]
    server_query_counts: dict[str, int]
    workers: int
    shards: int
    telemetry: object = NULL_TELEMETRY
    #: each shard worker's wall-clock phase profile, in shard order
    shard_profiles: list[dict] = field(default_factory=list)
    #: the engine's own phase profile (scatter, gather, merge)
    profile: dict = field(default_factory=dict)
    #: merged deterministic cost ledger export (empty when disabled).
    #: Identical for any worker count at a fixed shard count; template
    #: counters vary with the shard *layout* (each shard's servers warm
    #: their own caches), which is why the CI determinism step compares
    #: equal shard counts.
    costs: dict = field(default_factory=dict)

    @property
    def observations(self):
        return self.run.observations


def partition_probes(probes: list[Probe], shards: int) -> list[list[Probe]]:
    """Split probes into ``shards`` buckets without splitting any AS.

    Resolver sharing (§3.1) is per-AS state inside one platform
    instance, so correctness requires every probe of an AS to land in
    the same bucket.  Within that constraint the split is a greedy
    deterministic bin-packing: AS groups, largest first (ties by ASN),
    onto the least-loaded bucket.  Empty buckets are possible when
    ``shards`` exceeds the number of distinct ASNs.
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    groups: dict[int, list[Probe]] = {}
    for probe in sorted(probes, key=lambda p: p.probe_id):
        groups.setdefault(probe.asn, []).append(probe)
    buckets: list[list[Probe]] = [[] for _ in range(shards)]
    loads = [0] * shards
    ordered = sorted(groups.items(), key=lambda item: (-len(item[1]), item[0]))
    for _, group in ordered:
        target = min(range(shards), key=lambda index: (loads[index], index))
        buckets[target].extend(group)
        loads[target] += len(group)
    for bucket in buckets:
        bucket.sort(key=lambda p: p.probe_id)
    return buckets


def _run_shard(payload: tuple) -> dict:
    """One shard, in its own process (or inline for ``workers=1``).

    Top-level so it pickles under the spawn start method.  The worker
    bundle mirrors the caller's pillar enablement; the tracer streams
    into a shard-tagged :class:`RecordingEventSink` and retains nothing
    in memory (``max_traces=0``) — records are the transport.
    """
    (
        shard_index, config, probes,
        want_metrics, want_events, want_costs, spill_dir,
    ) = payload
    sink = None
    spill_path = None
    if want_events:
        if spill_dir is not None:
            # Memory-bounded transport: the worker streams its records
            # into a follower-compatible JSONL segment and keeps only a
            # bounded tail buffered, so event volume never scales the
            # worker's footprint.
            spill_path = str(
                Path(spill_dir) / f"shard-{shard_index:04d}.events.jsonl"
            )
            sink = SpillingEventSink(path=spill_path, shard=shard_index)
        else:
            sink = RecordingEventSink(shard=shard_index)
    telemetry = Telemetry(
        registry=MetricsRegistry() if want_metrics else NullRegistry(),
        tracer=Tracer(max_traces=0, sink=sink) if want_events else NullTracer(),
        profiler=RunProfiler(),
        events=sink,
        costs=CostLedger() if want_costs else None,
    )
    result = TestbedExperiment(
        config, telemetry=telemetry, probes=probes, shard=shard_index
    ).run()
    if spill_path is not None:
        sink.close()
    return {
        "shard": shard_index,
        "store": result.run.store,
        "registry": telemetry.registry if want_metrics else None,
        "records": (
            sink.records
            if sink is not None and spill_path is None
            else []
        ),
        "spill_path": spill_path,
        "server_query_counts": result.server_query_counts,
        "addresses": result.addresses,
        "site_of_address": result.site_of_address,
        "profile": result.profile,
        "costs": result.costs if want_costs else None,
    }


def _merged_note(shard_records: list[list[dict]], name: str) -> Note | None:
    """One campaign note, with per-shard additive fields summed.

    ``vantage_points`` and ``observations`` are per-shard quantities;
    everything else (domain, interval, duration, virtual timestamp) is
    identical across shards by construction.
    """
    notes = [
        record
        for records in shard_records
        for record in records
        if record.get("kind") == "note" and record.get("name") == name
    ]
    if not notes:
        return None
    base = notes[0]["data"]
    data = {
        "domain": base["domain"],
        "interval_s": base["interval_s"],
        "duration_s": base["duration_s"],
        "vantage_points": sum(n["data"]["vantage_points"] for n in notes),
    }
    if "observations" in base:
        data["observations"] = sum(n["data"]["observations"] for n in notes)
    return Note(name=name, data=data, at=max(n["at"] for n in notes))


def run_parallel(
    config: ExperimentConfig,
    workers: int = 1,
    shards: int | None = None,
    telemetry=None,
    spill_dir: str | Path | None = None,
) -> ParallelExperimentResult:
    """Run one campaign sharded over ``workers`` processes and merge.

    ``shards`` defaults to ``workers``; any (workers, shards) choice
    yields identical merged output — the shard layout never touches a
    random stream.  ``workers=1`` runs the shards inline (no process
    pool), through the *same* merge path, so its artifacts — including
    the event log, byte for byte — are the reference the parallel runs
    are tested against.

    ``spill_dir`` bounds worker memory: each shard streams its event
    records into a JSONL segment under that directory instead of
    accumulating them in RAM (see
    :class:`~repro.telemetry.SpillingEventSink`).  The merge reads the
    segments back, so the canonical merged log is byte-identical with
    or without spilling.
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    profiler = (
        telemetry.profiler if telemetry.profiler.enabled else RunProfiler()
    )
    shards = workers if shards is None else shards
    want_events = telemetry.tracer.enabled or telemetry.events.enabled
    want_metrics = telemetry.registry.enabled or telemetry.events.enabled
    want_costs = telemetry.costs.enabled

    with profiler.phase("parallel.probes"):
        generator = ProbeGenerator(seed=derive(config.seed, "probes"))
        probes = generator.generate(config.num_probes)
        if config.ipv6:
            probes = [probe for probe in probes if probe.ipv6_capable]
        buckets = [
            bucket for bucket in partition_probes(probes, shards) if bucket
        ]
        if not buckets:
            buckets = [[]]
    if spill_dir is not None:
        spill_dir = str(spill_dir)
        Path(spill_dir).mkdir(parents=True, exist_ok=True)
    payloads = [
        (
            index, config, bucket,
            want_metrics, want_events, want_costs, spill_dir,
        )
        for index, bucket in enumerate(buckets)
    ]

    with profiler.phase("parallel.scatter"):
        if workers == 1 or len(payloads) == 1:
            shard_results = [_run_shard(payload) for payload in payloads]
        else:
            context = multiprocessing.get_context("spawn")
            processes = min(workers, len(payloads))
            with context.Pool(processes=processes) as pool:
                shard_results = pool.map(_run_shard, payloads)
    for result in shard_results:
        # Spilled shards shipped a segment path instead of in-memory
        # records; load them once for the merge (the bound protects the
        # *workers* — the merge still sees every record).
        if result["spill_path"] is not None:
            result["records"] = list(iter_raw_records(result["spill_path"]))

    with profiler.phase("parallel.merge"):
        # Column-level merge: each shard ships its store and the rows
        # are re-sorted to (timestamp, vp_id) — the serial emission
        # order (ticks share one timestamp, VPs fire in vp_id order) —
        # without ever materializing an observation object.
        merged = ObservationStore()
        for result in shard_results:
            merged.merge(result["store"])
        merged.sort_canonical()
        template = shard_results[0]
        run = MeasurementRun(
            domain=config.domain.rstrip("."),
            interval_s=config.interval_s,
            duration_s=config.duration_s,
            store=merged,
        )
        server_query_counts: dict[str, int] = {}
        for result in shard_results:
            for address, count in result["server_query_counts"].items():
                server_query_counts[address] = (
                    server_query_counts.get(address, 0) + count
                )
        server_query_counts = {
            address: server_query_counts[address]
            for address in sorted(server_query_counts)
        }

        merged_registry = (
            telemetry.registry
            if telemetry.registry.enabled
            else MetricsRegistry()
        )
        if want_metrics:
            for result in shard_results:
                if result["registry"] is not None:
                    merged_registry.merge(result["registry"])

        if want_costs:
            # Integer addition per (phase, counter): merge order cannot
            # perturb the merged ledger, so serial and K-worker runs of
            # the same shard partition export identical bytes.
            for result in shard_results:
                if result["costs"]:
                    telemetry.costs.merge(result["costs"])

        normalized: list[dict] = []
        if want_events:
            trace_records = [
                record
                for result in shard_results
                for record in result["records"]
                if record.get("kind") == "trace"
            ]
            normalized = normalize_trace_records(trace_records)

        if telemetry.tracer.enabled:
            tracer = telemetry.tracer
            for record in normalized:
                if len(tracer.roots) < tracer.max_traces:
                    tracer.roots.append(span_from_dict(record["root"]))
                else:
                    tracer.dropped_traces += 1

        if telemetry.events.enabled:
            _write_merged_log(
                telemetry.events,
                shard_results,
                normalized,
                merged_registry,
            )

    profiler.record("parallel.workers", workers)
    profiler.record("parallel.shards", len(payloads))
    profiler.record("config.num_probes", config.num_probes)
    profiler.record("config.seed", config.seed)
    profiler.count("experiment.runs")
    profiler.count("experiment.observations", len(merged))
    return ParallelExperimentResult(
        config=config,
        run=run,
        addresses=list(template["addresses"]),
        site_of_address=dict(template["site_of_address"]),
        server_query_counts=server_query_counts,
        workers=workers,
        shards=len(payloads),
        telemetry=telemetry,
        shard_profiles=[result["profile"] for result in shard_results],
        profile=profiler.as_dict(),
        costs=telemetry.costs.as_dict() if want_costs else {},
    )


def _write_merged_log(
    sink, shard_results: list[dict], normalized: list[dict],
    registry: MetricsRegistry,
) -> None:
    """Append the canonical merged event stream to the caller's sink.

    Canonical order mirrors a serial run: run_meta, fault timeline,
    measure.start, traces (normalized), measure.end, final metrics
    snapshot.  Profile events are deliberately absent — wall-clock
    phases differ between runs and would break byte-identity.  The same
    goes for ``shard.heartbeat`` notes (the live monitor's progress
    feed): this writer re-emits only the kinds listed above, so
    heartbeats are filtered out by construction and a monitored run
    merges byte-identically to an unmonitored one.
    """
    shard_records = [result["records"] for result in shard_results]
    run_meta = next(
        (
            record
            for records in shard_records
            for record in records
            if record.get("kind") == "run_meta"
        ),
        None,
    )
    if run_meta is not None:
        sink.emit(RunMeta(run=run_meta["run"], at=run_meta.get("at")))
    # Fault and attack transitions are derived from the scenario/profile,
    # so every shard emitted the identical sequence: take the first
    # shard's copy and re-emit it fresh (dropping the in-flight shard tag).
    for records in shard_records:
        fault_notes = [
            record
            for record in records
            if record.get("kind") == "note"
            and str(record.get("name", "")).startswith(("fault.", "attack."))
        ]
        if fault_notes:
            for record in fault_notes:
                sink.emit(
                    Note(
                        name=record["name"],
                        data=record["data"],
                        at=record.get("at"),
                    )
                )
            break
    start = _merged_note(shard_records, "measure.start")
    if start is not None:
        sink.emit(start)
    for record in normalized:
        sink.emit(RawEvent(record=record))
    end = _merged_note(shard_records, "measure.end")
    if end is not None:
        sink.emit(end)
    snapshot_at = max(
        (
            record["at"]
            for records in shard_records
            for record in records
            if record.get("kind") == "metrics" and record.get("at") is not None
        ),
        default=None,
    )
    sink.emit(MetricsSnapshot(at=snapshot_at, metrics=registry.as_dict()))
    sink.flush()


__all__ = [
    "ParallelExperimentResult",
    "partition_probes",
    "run_parallel",
]
