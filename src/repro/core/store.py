"""Columnar observation storage: the allocation-light data plane.

The paper's methodology rests on ~33M query observations; a frozen
dataclass per query caps campaigns far below that scale.  This module
stores observations as parallel ``array``/bytes columns instead — O(1)
append with **zero per-row Python objects** — while a lazy row view
materializes :class:`QueryObservation` on access, so every existing
analysis keeps working unchanged.

Layout (one entry per observation):

``_vp``  ``array('q')``
    vantage-point id.
``_prof``  ``array('i')``
    index into the *VP profile* side table.  ``probe_id``,
    ``recursive_address``, ``impl_name`` and ``continent`` are
    constants of a vantage point, so they are registered once per VP
    (:meth:`ObservationStore.profile_id`) and each row carries a single
    small integer instead of four object references.
``_t`` / ``_rtt``  ``array('d')``
    issue timestamp and final-exchange RTT (NaN encodes ``None``).
``_att`` / ``_ok``  ``array('i')`` / ``array('b')``
    attempt count and success flag.
``_site`` / ``_auth`` / ``_sfx``  ``array('i')``
    interned string ids (shared pool) for the answering site code, the
    answering service address, and the qname *suffix*.
``_labels`` + ``_lend``  ``bytearray`` + ``array('q')``
    the qname's unique per-query label, stored as raw bytes in one
    contiguous blob with cumulative end offsets.  A campaign qname is
    ``label + suffix`` (``m-17-3`` + ``.probe.ourtestdomain.nl``);
    arbitrary qnames intern the whole string as the suffix with an
    empty label.

Interning keeps a 33M-row campaign's string storage at a handful of
pool entries (sites, service addresses, one suffix); the numeric
columns cost ~45 bytes/row regardless of campaign size.

``merge`` is order-invariant: shard stores append with their string
and profile ids remapped into the destination pools, and
:meth:`ObservationStore.sort_canonical` then restores the serial
emission order ``(timestamp, vp_id)`` — any partition of the same
rows merges to the same sequence, which is what keeps serial and
K-worker exports byte-identical.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from math import isnan, nan

from ..netsim.geo import Continent

_EMPTY = b""


@dataclass(frozen=True, slots=True)
class QueryObservation:
    """One measured query, combining client- and server-side views."""

    vp_id: int
    probe_id: int
    recursive_address: str
    impl_name: str
    continent: Continent
    timestamp: float
    qname: str
    site: str                 # site code from the TXT marker ("" if failed)
    authoritative: str        # service address the answer came from
    rtt_ms: float | None      # recursive→authoritative RTT of the answer
    attempts: int
    succeeded: bool


class ObservationStore:
    """Columnar store of query observations (see module docstring)."""

    __slots__ = (
        "_vp", "_prof", "_t", "_rtt", "_att", "_ok",
        "_site", "_auth", "_sfx", "_lend", "_labels",
        "_strings", "_string_ids",
        "_profiles", "_profile_ids",
        "_vp_seen", "_probe_seen", "_seen_pos",
        "_continent_of", "append",
    )

    def __init__(self):
        self._vp = array("q")
        self._prof = array("i")
        self._t = array("d")
        self._rtt = array("d")
        self._att = array("i")
        self._ok = array("b")
        self._site = array("i")
        self._auth = array("i")
        self._sfx = array("i")
        self._lend = array("q")
        self._labels = bytearray()
        #: interned string pool: id -> str, plus the reverse map.
        self._strings: list[str] = []
        self._string_ids: dict[str, int] = {}
        #: VP profiles: id -> (probe_id, recursive_id, impl_id, continent_id)
        self._profiles: list[tuple[int, int, int, int]] = []
        self._profile_ids: dict[tuple[int, int, int, int], int] = {}
        # Distinct-VP/probe counters, maintained incrementally: appends
        # touch nothing, reads fold in only the rows added since the
        # last read — O(1) per appended row overall, O(1) per read
        # thereafter (the heartbeat/summary path).
        self._vp_seen: set[int] = set()
        self._probe_seen: set[int] = set()
        self._seen_pos = 0
        self._continent_of: dict[int, Continent] = {}
        self._bind_append()

    # -- interning ---------------------------------------------------------

    def intern(self, text: str) -> int:
        """The pool id of ``text``, interning it on first sight."""
        ids = self._string_ids
        sid = ids.get(text)
        if sid is None:
            sid = ids[text] = len(self._strings)
            self._strings.append(text)
        return sid

    def profile_id(
        self,
        probe_id: int,
        recursive_address: str,
        impl_name: str,
        continent: Continent | str,
    ) -> int:
        """The id of one VP's constant fields, registered once per VP."""
        value = continent.value if isinstance(continent, Continent) else continent
        key = (
            int(probe_id),
            self.intern(recursive_address),
            self.intern(impl_name),
            self.intern(value),
        )
        pid = self._profile_ids.get(key)
        if pid is None:
            pid = self._profile_ids[key] = len(self._profiles)
            self._profiles.append(key)
        return pid

    # -- appending ---------------------------------------------------------

    def _bind_append(self) -> None:
        """Build the fast-path ``append`` closure.

        One closure with every column's bound ``append`` beats a method
        doing ten attribute lookups per row by ~2x — the difference
        between missing and clearing the 1M observations/s target.
        """
        vp_a = self._vp.append
        prof_a = self._prof.append
        t_a = self._t.append
        rtt_a = self._rtt.append
        att_a = self._att.append
        ok_a = self._ok.append
        site_a = self._site.append
        auth_a = self._auth.append
        sfx_a = self._sfx.append
        lend_a = self._lend.append
        labels = self._labels
        labels_extend = labels.extend
        strings = self._strings
        string_ids = self._string_ids

        def append(
            vp_id: int,
            profile_id: int,
            timestamp: float,
            label: bytes,
            suffix_id: int,
            site: str,
            authoritative: str,
            rtt_ms: float | None,
            attempts: int,
            succeeded: bool,
        ) -> None:
            vp_a(vp_id)
            prof_a(profile_id)
            t_a(timestamp)
            rtt_a(nan if rtt_ms is None else rtt_ms)
            att_a(attempts)
            ok_a(1 if succeeded else 0)
            sid = string_ids.get(site)
            if sid is None:
                sid = string_ids[site] = len(strings)
                strings.append(site)
            site_a(sid)
            aid = string_ids.get(authoritative)
            if aid is None:
                aid = string_ids[authoritative] = len(strings)
                strings.append(authoritative)
            auth_a(aid)
            sfx_a(suffix_id)
            if label:
                labels_extend(label)
            lend_a(len(labels))

        self.append = append

    def append_observation(self, obs: QueryObservation) -> None:
        """Generic (slow-path) append of one materialized observation."""
        self.append(
            obs.vp_id,
            self.profile_id(
                obs.probe_id, obs.recursive_address, obs.impl_name,
                obs.continent,
            ),
            obs.timestamp,
            _EMPTY,
            self.intern(obs.qname),
            obs.site,
            obs.authoritative,
            obs.rtt_ms,
            obs.attempts,
            obs.succeeded,
        )

    def append_dict(self, row: dict) -> None:
        """Append one JSONL row (the :mod:`repro.core.results` schema)."""
        self.append(
            row["vp_id"],
            self.profile_id(
                row["probe_id"], row["recursive"], row["impl"],
                row["continent"],
            ),
            row["t"],
            _EMPTY,
            self.intern(row["qname"]),
            row["site"],
            row["authoritative"],
            row["rtt_ms"],
            row["attempts"],
            row["ok"],
        )

    def extend(self, observations) -> None:
        for obs in observations:
            self.append_observation(obs)

    # -- size and distinct counters ----------------------------------------

    def __len__(self) -> int:
        return len(self._vp)

    def _refresh_seen(self) -> None:
        pos = self._seen_pos
        end = len(self._vp)
        if pos >= end:
            return
        vp_seen = self._vp_seen
        probe_seen = self._probe_seen
        profiles = self._profiles
        vp_col = self._vp
        prof_col = self._prof
        for index in range(pos, end):
            vp_seen.add(vp_col[index])
            probe_seen.add(profiles[prof_col[index]][0])
        self._seen_pos = end

    @property
    def vp_count(self) -> int:
        """Distinct vantage points observed (O(1) amortized)."""
        self._refresh_seen()
        return len(self._vp_seen)

    @property
    def probe_count(self) -> int:
        """Distinct probes observed (O(1) amortized)."""
        self._refresh_seen()
        return len(self._probe_seen)

    # -- row access --------------------------------------------------------

    def _continent(self, cid: int) -> Continent:
        continent = self._continent_of.get(cid)
        if continent is None:
            continent = self._continent_of[cid] = Continent(self._strings[cid])
        return continent

    def row(self, index: int) -> QueryObservation:
        """Materialize row ``index`` as a :class:`QueryObservation`."""
        if index < 0:
            index += len(self._vp)
        if not 0 <= index < len(self._vp):
            raise IndexError(f"row {index} of {len(self._vp)}")
        strings = self._strings
        probe_id, rec_id, impl_id, cont_id = self._profiles[self._prof[index]]
        start = self._lend[index - 1] if index else 0
        label = self._labels[start:self._lend[index]]
        rtt = self._rtt[index]
        return QueryObservation(
            vp_id=self._vp[index],
            probe_id=probe_id,
            recursive_address=strings[rec_id],
            impl_name=strings[impl_id],
            continent=self._continent(cont_id),
            timestamp=self._t[index],
            qname=(label.decode("ascii") if label else "")
            + strings[self._sfx[index]],
            site=strings[self._site[index]],
            authoritative=strings[self._auth[index]],
            rtt_ms=None if isnan(rtt) else rtt,
            attempts=self._att[index],
            succeeded=bool(self._ok[index]),
        )

    def iter_rows(self):
        """Stream every row as a :class:`QueryObservation` (transient)."""
        strings = self._strings
        profiles = self._profiles
        continent = self._continent
        labels = self._labels
        start = 0
        make = QueryObservation
        for index, end in enumerate(self._lend):
            probe_id, rec_id, impl_id, cont_id = profiles[self._prof[index]]
            rtt = self._rtt[index]
            label = labels[start:end]
            start = end
            yield make(
                vp_id=self._vp[index],
                probe_id=probe_id,
                recursive_address=strings[rec_id],
                impl_name=strings[impl_id],
                continent=continent(cont_id),
                timestamp=self._t[index],
                qname=(label.decode("ascii") if label else "")
                + strings[self._sfx[index]],
                site=strings[self._site[index]],
                authoritative=strings[self._auth[index]],
                rtt_ms=None if isnan(rtt) else rtt,
                attempts=self._att[index],
                succeeded=bool(self._ok[index]),
            )

    def iter_dicts(self):
        """Stream rows in the :mod:`repro.core.results` JSONL schema.

        Field order matches ``observation_to_dict`` exactly, so a run
        saved from the store is byte-identical to one saved from a list
        of materialized observations.
        """
        strings = self._strings
        profiles = self._profiles
        labels = self._labels
        start = 0
        for index, end in enumerate(self._lend):
            probe_id, rec_id, impl_id, cont_id = profiles[self._prof[index]]
            rtt = self._rtt[index]
            label = labels[start:end]
            start = end
            yield {
                "vp_id": self._vp[index],
                "probe_id": probe_id,
                "recursive": strings[rec_id],
                "impl": strings[impl_id],
                "continent": strings[cont_id],
                "t": self._t[index],
                "qname": (label.decode("ascii") if label else "")
                + strings[self._sfx[index]],
                "site": strings[self._site[index]],
                "authoritative": strings[self._auth[index]],
                "rtt_ms": None if isnan(rtt) else rtt,
                "attempts": self._att[index],
                "ok": bool(self._ok[index]),
            }

    @property
    def rows(self) -> "ObservationRows":
        return ObservationRows(self)

    # -- merge and canonical order -----------------------------------------

    def merge(self, other: "ObservationStore") -> None:
        """Append every row of ``other``, remapping its interned ids.

        Column-level: numeric columns extend with C-speed array copies;
        only the interned columns pay a per-row id remap.  Emission
        order is preserved (``other``'s rows land after existing rows);
        callers wanting the canonical order run
        :meth:`sort_canonical` after the last merge — together the two
        are order-invariant over any shard partition.
        """
        if other is self:
            raise ValueError("cannot merge a store into itself")
        smap = [self.intern(text) for text in other._strings]
        pmap = [
            self._register_profile(
                probe_id, smap[rec_id], smap[impl_id], smap[cont_id]
            )
            for probe_id, rec_id, impl_id, cont_id in other._profiles
        ]
        self._vp.extend(other._vp)
        self._t.extend(other._t)
        self._rtt.extend(other._rtt)
        self._att.extend(other._att)
        self._ok.extend(other._ok)
        self._prof.extend(map(pmap.__getitem__, other._prof))
        self._site.extend(map(smap.__getitem__, other._site))
        self._auth.extend(map(smap.__getitem__, other._auth))
        self._sfx.extend(map(smap.__getitem__, other._sfx))
        base = len(self._labels)
        self._labels.extend(other._labels)
        if base:
            self._lend.extend(end + base for end in other._lend)
        else:
            self._lend.extend(other._lend)

    def _register_profile(
        self, probe_id: int, rec_id: int, impl_id: int, cont_id: int
    ) -> int:
        key = (probe_id, rec_id, impl_id, cont_id)
        pid = self._profile_ids.get(key)
        if pid is None:
            pid = self._profile_ids[key] = len(self._profiles)
            self._profiles.append(key)
        return pid

    def sort_canonical(self) -> None:
        """Stable-sort rows by ``(timestamp, vp_id)`` — the serial order.

        Ticks share one timestamp and VPs fire in vp_id order, so this
        reproduces exactly the sequence a serial synchronous run emits.
        """
        t_col = self._t
        vp_col = self._vp
        count = len(vp_col)
        order = sorted(
            range(count), key=lambda index: (t_col[index], vp_col[index])
        )
        if order == list(range(count)):
            return
        take = order.__getitem__  # noqa: F841  (readability anchor)
        for name in ("_vp", "_prof", "_t", "_rtt", "_att", "_ok",
                     "_site", "_auth", "_sfx"):
            column = getattr(self, name)
            setattr(
                self, name, array(column.typecode, map(column.__getitem__, order))
            )
        old_labels = self._labels
        old_ends = self._lend
        labels = bytearray()
        ends = array("q")
        for index in order:
            start = old_ends[index - 1] if index else 0
            labels.extend(old_labels[start:old_ends[index]])
            ends.append(len(labels))
        self._labels = labels
        self._lend = ends
        # Row identities did not change, only their order; the distinct
        # sets stay valid but the scan position must cover every row.
        self._refresh_seen()
        self._bind_append()

    # -- pickling (spawn workers ship stores back to the parent) -----------

    def __getstate__(self) -> dict:
        self._refresh_seen()
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "append"
        }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._bind_append()

    def __repr__(self) -> str:
        return (
            f"ObservationStore(rows={len(self._vp)}, "
            f"strings={len(self._strings)}, profiles={len(self._profiles)})"
        )


class ObservationRows:
    """Sequence view over a store: list semantics, columnar storage.

    ``run.observations`` returns one of these.  Indexing, slicing,
    iteration, ``len``, equality against any sequence, and ``append`` /
    ``extend`` all behave like the list of :class:`QueryObservation`
    the seed code kept — rows materialize lazily and are never retained.
    """

    __slots__ = ("_store",)

    def __init__(self, store: ObservationStore):
        self._store = store

    @property
    def store(self) -> ObservationStore:
        return self._store

    def __len__(self) -> int:
        return len(self._store)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._store.row(i) for i in range(*index.indices(len(self._store)))]
        return self._store.row(index)

    def __iter__(self):
        return self._store.iter_rows()

    def __bool__(self) -> bool:
        return len(self._store) > 0

    def __eq__(self, other) -> bool:
        if isinstance(other, ObservationRows) and other._store is self._store:
            return True
        try:
            length = len(other)
        except TypeError:
            return NotImplemented
        if len(self) != length:
            return False
        return all(a == b for a, b in zip(self, other))

    __hash__ = None

    def append(self, obs: QueryObservation) -> None:
        self._store.append_observation(obs)

    def extend(self, observations) -> None:
        self._store.extend(observations)

    def count(self, value) -> int:
        return sum(1 for row in self if row == value)

    def index(self, value) -> int:
        for position, row in enumerate(self):
            if row == value:
                return position
        raise ValueError(f"{value!r} is not in rows")

    def __contains__(self, value) -> bool:
        return any(row == value for row in self)

    def __repr__(self) -> str:
        return f"ObservationRows({len(self)} rows)"


class MeasurementRun:
    """All observations of one campaign plus its parameters.

    The constructor keeps the seed signature — ``observations`` may be
    any iterable of :class:`QueryObservation` and is ingested into the
    store — while campaigns and the parallel merge build directly on
    :attr:`store` and never materialize a row.
    """

    __slots__ = ("domain", "interval_s", "duration_s", "store")

    def __init__(
        self,
        domain: str,
        interval_s: float,
        duration_s: float,
        observations=None,
        store: ObservationStore | None = None,
    ):
        self.domain = domain
        self.interval_s = interval_s
        self.duration_s = duration_s
        self.store = store if store is not None else ObservationStore()
        if observations is not None:
            self.store.extend(observations)

    @property
    def observations(self) -> ObservationRows:
        return self.store.rows

    def by_vp(self) -> dict[int, list[QueryObservation]]:
        grouped: dict[int, list[QueryObservation]] = {}
        for obs in self.store.iter_rows():
            grouped.setdefault(obs.vp_id, []).append(obs)
        return grouped

    @property
    def vp_count(self) -> int:
        return self.store.vp_count

    @property
    def probe_count(self) -> int:
        return self.store.probe_count

    def __eq__(self, other) -> bool:
        if not isinstance(other, MeasurementRun):
            return NotImplemented
        return (
            self.domain == other.domain
            and self.interval_s == other.interval_s
            and self.duration_s == other.duration_s
            and self.observations == other.observations
        )

    __hash__ = None

    def __repr__(self) -> str:
        return (
            f"MeasurementRun(domain={self.domain!r}, "
            f"interval_s={self.interval_s}, duration_s={self.duration_s}, "
            f"observations={len(self.store)})"
        )


__all__ = [
    "MeasurementRun",
    "ObservationRows",
    "ObservationStore",
    "QueryObservation",
]
