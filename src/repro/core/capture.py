"""Wire-level capture of simulated traffic (the paper's datasets [19]).

The paper publishes its raw measurement data; this module gives the
simulation the same property at the packet level: a
:class:`CapturingNetwork` wraps :class:`~repro.netsim.network.SimNetwork`
and records every query/response exchange with its actual DNS wire
bytes.  Captures serialize to a compact JSONL format ("pcap-lite") and
can be decoded back into :class:`~repro.dns.message.Message` objects for
offline analysis.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..dns.message import Message
from ..netsim.geo import Location
from ..netsim.network import RoundTrip, SimNetwork


@dataclass(frozen=True)
class CapturedExchange:
    """One query/response pair on the simulated wire."""

    timestamp: float
    client: str
    server: str          # service address
    served_by: str       # site code ("" when lost)
    rtt_ms: float | None
    query_wire: bytes
    response_wire: bytes | None

    def query(self) -> Message:
        return Message.from_wire(self.query_wire)

    def response(self) -> Message | None:
        if self.response_wire is None:
            return None
        return Message.from_wire(self.response_wire)


@dataclass
class Capture:
    """An ordered list of exchanges."""

    exchanges: list[CapturedExchange] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.exchanges)

    def __iter__(self) -> Iterator[CapturedExchange]:
        return iter(self.exchanges)

    def for_server(self, address: str) -> list[CapturedExchange]:
        return [ex for ex in self.exchanges if ex.server == address]

    def for_client(self, address: str) -> list[CapturedExchange]:
        return [ex for ex in self.exchanges if ex.client == address]

    def loss_rate(self) -> float:
        if not self.exchanges:
            return 0.0
        lost = sum(1 for ex in self.exchanges if ex.response_wire is None)
        return lost / len(self.exchanges)


class CapturingNetwork:
    """A :class:`SimNetwork` proxy that records every round trip.

    Drop-in: hand it wherever a network is expected; all attribute
    access is forwarded, only :meth:`round_trip` is intercepted.
    """

    def __init__(self, network: SimNetwork, capture: Capture | None = None):
        self._network = network
        self.capture = capture if capture is not None else Capture()

    def round_trip(
        self,
        client_location: Location,
        client_address: str,
        dst_address: str,
        payload: bytes,
    ) -> RoundTrip:
        trip = self._network.round_trip(
            client_location, client_address, dst_address, payload
        )
        self.capture.exchanges.append(
            CapturedExchange(
                timestamp=self._network.clock.now,
                client=client_address,
                server=dst_address,
                served_by=trip.served_by,
                rtt_ms=trip.rtt_ms,
                query_wire=payload,
                response_wire=trip.response,
            )
        )
        return trip

    def __getattr__(self, name):
        return getattr(self._network, name)


def save_capture(capture: Capture, path: str | Path) -> int:
    """Write a capture as JSONL with base64-encoded wire bytes."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(json.dumps({"kind": "wire_capture", "version": 1}) + "\n")
        for ex in capture.exchanges:
            fh.write(
                json.dumps(
                    {
                        "t": ex.timestamp,
                        "src": ex.client,
                        "dst": ex.server,
                        "site": ex.served_by,
                        "rtt_ms": ex.rtt_ms,
                        "q": base64.b64encode(ex.query_wire).decode(),
                        "r": base64.b64encode(ex.response_wire).decode()
                        if ex.response_wire is not None
                        else None,
                    }
                )
                + "\n"
            )
    return len(capture.exchanges)


def load_capture(path: str | Path) -> Capture:
    path = Path(path)
    capture = Capture()
    with path.open() as fh:
        header = json.loads(fh.readline())
        if header.get("kind") != "wire_capture":
            raise ValueError(f"{path} is not a wire-capture file")
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            capture.exchanges.append(
                CapturedExchange(
                    timestamp=row["t"],
                    client=row["src"],
                    server=row["dst"],
                    served_by=row["site"],
                    rtt_ms=row["rtt_ms"],
                    query_wire=base64.b64decode(row["q"]),
                    response_wire=base64.b64decode(row["r"])
                    if row["r"] is not None
                    else None,
                )
            )
    return capture
