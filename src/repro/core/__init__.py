"""The paper's experiments and operator guidance (core contribution)."""

from .store import (
    MeasurementRun,
    ObservationRows,
    ObservationStore,
    QueryObservation,
)
from .capture import (
    Capture,
    CapturedExchange,
    CapturingNetwork,
    load_capture,
    save_capture,
)
from .combinations import COMBINATIONS, FIGURE6_INTERVALS_MIN, Combination
from .deployment import (
    AuthoritativeSpec,
    DeployedAuthoritative,
    Deployment,
    build_zone,
)
from .experiment import (
    DEFAULT_DOMAIN,
    ExperimentConfig,
    ExperimentResult,
    TestbedExperiment,
    run_combination,
)
from .parallel import (
    ParallelExperimentResult,
    partition_probes,
    run_parallel,
)
from .planner import (
    ClientLatency,
    DeploymentEvaluation,
    DeploymentPlanner,
    SelectionModel,
    sidn_style_designs,
)
from .resilience import (
    AttackScenario,
    ResilienceEvaluator,
    ResilienceReport,
    SiteLoad,
)
from .results import (
    iter_observations,
    load_run,
    observation_from_dict,
    observation_to_dict,
    save_run,
)

__all__ = [
    "AttackScenario",
    "AuthoritativeSpec",
    "COMBINATIONS",
    "Capture",
    "CapturedExchange",
    "CapturingNetwork",
    "load_capture",
    "save_capture",
    "ClientLatency",
    "Combination",
    "DEFAULT_DOMAIN",
    "DeployedAuthoritative",
    "Deployment",
    "DeploymentEvaluation",
    "DeploymentPlanner",
    "ExperimentConfig",
    "ExperimentResult",
    "FIGURE6_INTERVALS_MIN",
    "MeasurementRun",
    "ObservationRows",
    "ObservationStore",
    "ParallelExperimentResult",
    "QueryObservation",
    "partition_probes",
    "run_parallel",
    "ResilienceEvaluator",
    "ResilienceReport",
    "SelectionModel",
    "SiteLoad",
    "TestbedExperiment",
    "build_zone",
    "iter_observations",
    "load_run",
    "observation_from_dict",
    "observation_to_dict",
    "run_combination",
    "save_run",
    "sidn_style_designs",
]
