"""Deployments: authoritative specs and their instantiation on the network.

An :class:`AuthoritativeSpec` is one NS of a zone — unicast (one site) or
an anycast service (several sites sharing the NS address).  Deploying a
spec builds one authoritative engine per site, each answering the shared
probe name with a marker TXT that encodes the NS name and the site, the
paper's trick for identifying which server answered (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dns.name import Name
from ..dns.rdata import NS, SOA, TXT, A
from ..dns.server import AuthoritativeServer
from ..dns.types import RRType
from ..dns.zone import Zone
from ..netsim.anycast import AnycastGroup, AnycastSite
from ..netsim.geo import DATACENTERS, Location
from ..netsim.network import SimNetwork
from ..telemetry import NULL_TELEMETRY

PROBE_LABEL = "probe"
TXT_TTL = 5  # the paper's cache-defeating TTL


@dataclass(frozen=True)
class AuthoritativeSpec:
    """One NS record's service: a name and the site(s) behind its address."""

    name: str                  # e.g. "ns1"
    sites: tuple[str, ...]     # datacenter codes; >1 means anycast
    suboptimal_rate: float = 0.10  # anycast catchment imperfection

    def __post_init__(self):
        if not self.sites:
            raise ValueError(f"authoritative {self.name} needs at least one site")
        unknown = [code for code in self.sites if code not in DATACENTERS]
        if unknown:
            raise ValueError(f"unknown datacenter codes: {unknown}")

    @property
    def is_anycast(self) -> bool:
        return len(self.sites) > 1


@dataclass
class DeployedAuthoritative:
    """A spec bound to an address with running engines."""

    spec: AuthoritativeSpec
    address: str
    engines: dict[str, AuthoritativeServer] = field(default_factory=dict)

    def total_queries(self) -> int:
        return sum(engine.stats.queries for engine in self.engines.values())


def build_zone(domain: Name, ns_names: list[Name], marker: str) -> Zone:
    """The test zone one site serves; ``marker`` identifies the site."""
    zone = Zone(domain)
    zone.add(
        domain,
        RRType.SOA,
        SOA(
            ns_names[0],
            Name.from_text("hostmaster").concatenate(domain),
            2017041201,
            7200,
            3600,
            1209600,
            60,
        ),
        ttl=3600,
    )
    for index, ns_name in enumerate(ns_names):
        zone.add(domain, RRType.NS, NS(ns_name), ttl=3600)
        zone.add(ns_name, RRType.A, A(f"192.0.2.{index + 1}"), ttl=3600)
    probe_name = Name.from_text(PROBE_LABEL).concatenate(domain)
    zone.add(probe_name, RRType.TXT, TXT.from_value(marker), ttl=TXT_TTL)
    zone.add(probe_name.child(b"*"), RRType.TXT, TXT.from_value(marker), ttl=TXT_TTL)
    return zone


class Deployment:
    """A set of authoritatives for one test domain, deployable on a network."""

    def __init__(
        self, domain: str, specs: list[AuthoritativeSpec], telemetry=None
    ):
        if not specs:
            raise ValueError("a deployment needs at least one authoritative")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("authoritative names must be unique")
        self.domain = Name.from_text(domain)
        self.specs = list(specs)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.deployed: list[DeployedAuthoritative] = []

    @classmethod
    def from_sites(cls, domain: str, sites: tuple[str, ...] | list[str]) -> "Deployment":
        """Table-1-style deployment: one unicast authoritative per site."""
        specs = [
            AuthoritativeSpec(name=f"ns{i + 1}", sites=(code,))
            for i, code in enumerate(sites)
        ]
        return cls(domain, specs)

    @property
    def ns_names(self) -> list[Name]:
        return [
            Name.from_text(spec.name).concatenate(self.domain) for spec in self.specs
        ]

    def deploy(self, network: SimNetwork, base_address: str = "10.0") -> list[str]:
        """Instantiate every authoritative on the network.

        Returns the list of service addresses (the zone's NS set).  Pass
        an IPv6 prefix (e.g. ``"2001:db8:53"``) as ``base_address`` for
        the paper's IPv6-only deployment variant (§3.1).
        """
        if self.telemetry is NULL_TELEMETRY:
            # Inherit the network's bundle: wiring telemetry into the
            # shared SimNetwork instruments the engines deployed on it.
            self.telemetry = getattr(network, "telemetry", NULL_TELEMETRY)
        addresses = []
        ns_names = self.ns_names
        ipv6 = ":" in base_address
        for index, spec in enumerate(self.specs):
            if ipv6:
                address = f"{base_address}:{index}::53"
            else:
                address = f"{base_address}.{index}.53"
            deployed = DeployedAuthoritative(spec=spec, address=address)
            if spec.is_anycast:
                group = AnycastGroup(address, suboptimal_rate=spec.suboptimal_rate)
                for code in spec.sites:
                    engine = self._make_engine(spec, code, ns_names)
                    deployed.engines[code] = engine
                    group.add_site(
                        AnycastSite(code, DATACENTERS[code], engine.handle_wire)
                    )
                network.register_anycast(group)
            else:
                code = spec.sites[0]
                engine = self._make_engine(spec, code, ns_names)
                deployed.engines[code] = engine
                network.register_host(address, DATACENTERS[code], engine.handle_wire)
            self.deployed.append(deployed)
            addresses.append(address)
        return addresses

    def _make_engine(
        self, spec: AuthoritativeSpec, code: str, ns_names: list[Name]
    ) -> AuthoritativeServer:
        marker = f"{spec.name}-{code}"
        zone = build_zone(self.domain, ns_names, marker)
        return AuthoritativeServer(marker, [zone], telemetry=self.telemetry)

    # -- post-run accessors ---------------------------------------------------

    def site_of_address(self) -> dict[str, str]:
        """address -> site code for unicast NSes ('' for anycast)."""
        return {
            d.address: (d.spec.sites[0] if not d.spec.is_anycast else "")
            for d in self.deployed
        }

    def server_query_counts(self) -> dict[str, int]:
        """Per-site query totals from the authoritative-side logs."""
        counts: dict[str, int] = {}
        for deployed in self.deployed:
            for code, engine in deployed.engines.items():
                counts[f"{deployed.spec.name}-{code}"] = engine.stats.queries
        return counts
