"""Result persistence: observations to/from JSON Lines.

The paper publishes its measurement dataset [19, 22]; this module gives
the reproduction the same property — campaigns can be stored, shared,
and re-analyzed without re-running the simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from ..netsim.geo import Continent
from .store import MeasurementRun, QueryObservation


def observation_to_dict(obs: QueryObservation) -> dict:
    return {
        "vp_id": obs.vp_id,
        "probe_id": obs.probe_id,
        "recursive": obs.recursive_address,
        "impl": obs.impl_name,
        "continent": obs.continent.value,
        "t": obs.timestamp,
        "qname": obs.qname,
        "site": obs.site,
        "authoritative": obs.authoritative,
        "rtt_ms": obs.rtt_ms,
        "attempts": obs.attempts,
        "ok": obs.succeeded,
    }


def observation_from_dict(row: dict) -> QueryObservation:
    return QueryObservation(
        vp_id=row["vp_id"],
        probe_id=row["probe_id"],
        recursive_address=row["recursive"],
        impl_name=row["impl"],
        continent=Continent(row["continent"]),
        timestamp=row["t"],
        qname=row["qname"],
        site=row["site"],
        authoritative=row["authoritative"],
        rtt_ms=row["rtt_ms"],
        attempts=row["attempts"],
        succeeded=row["ok"],
    )


def save_run(run: MeasurementRun, path: str | Path) -> int:
    """Write a run as JSONL with a header line; returns rows written.

    Rows stream straight out of the columnar store — no observation
    objects materialize, so saving a 33M-row campaign allocates only
    one transient dict at a time.
    """
    path = Path(path)
    with path.open("w") as fh:
        header = {
            "kind": "measurement_run",
            "domain": run.domain,
            "interval_s": run.interval_s,
            "duration_s": run.duration_s,
        }
        fh.write(json.dumps(header) + "\n")
        dumps = json.dumps
        write = fh.write
        for row in run.store.iter_dicts():
            write(dumps(row) + "\n")
    return len(run.store)


def load_run(path: str | Path) -> MeasurementRun:
    """Read a run written by :func:`save_run`."""
    path = Path(path)
    with path.open() as fh:
        header = json.loads(fh.readline())
        if header.get("kind") != "measurement_run":
            raise ValueError(f"{path} is not a measurement-run file")
        run = MeasurementRun(
            domain=header["domain"],
            interval_s=header["interval_s"],
            duration_s=header["duration_s"],
        )
        append = run.store.append_dict
        for line in fh:
            line = line.strip()
            if line:
                append(json.loads(line))
    return run


def iter_observations(path: str | Path) -> Iterator[QueryObservation]:
    """Stream observations from disk without loading the whole run."""
    path = Path(path)
    with path.open() as fh:
        fh.readline()  # header
        for line in fh:
            line = line.strip()
            if line:
                yield observation_from_dict(json.loads(line))
