"""The paper's testbed experiment, end to end (§3.1).

One :class:`TestbedExperiment` = deploy a combination of authoritatives
for the test domain, generate the probe population, attach recursives,
and run the periodic TXT measurement.  Everything is seeded, so a given
configuration always reproduces the same observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..atlas.probes import Probe, ProbeGenerator
from ..netsim.latency import LatencyModel, LatencyParameters
from ..netsim.network import SimNetwork
from ..resolvers.population import ResolverPopulation
from ..seeding import derive
from ..telemetry import NULL_TELEMETRY, RunProfiler
from .combinations import COMBINATIONS
from .deployment import AuthoritativeSpec, Deployment
from .store import MeasurementRun

DEFAULT_DOMAIN = "ourtestdomain.nl."


@dataclass
class ExperimentConfig:
    """Everything that defines one testbed run."""

    authoritatives: list[AuthoritativeSpec]
    domain: str = DEFAULT_DOMAIN
    num_probes: int = 400
    interval_s: float = 120.0
    duration_s: float = 3600.0
    seed: int = 0
    resolver_mix: dict[str, float] | None = None
    latency_params: LatencyParameters = field(default_factory=LatencyParameters)
    #: §3.1 IPv6 variant: deploy v6-only authoritatives and measure from
    #: the IPv6-capable subset of the probes.
    ipv6: bool = False
    #: fault timeline for the run: a :class:`~repro.netsim.faults.Scenario`,
    #: a bundled scenario name, or a scenario file path (None = no faults).
    scenario: object | None = None
    #: adversarial workload: an
    #: :class:`~repro.netsim.adversary.AttackProfile`, a bundled attack
    #: name, or a profile file path (None = benign campaign).
    attack: object | None = None
    #: emit a ``shard.heartbeat`` note every N measurement ticks for the
    #: live monitor (0 = off; heartbeats never enter the canonical
    #: merged event log, so results are identical either way).
    heartbeat_every_ticks: int = 0
    #: drive the measurement through the discrete-event kernel: ticks,
    #: deliveries, and retry timeouts become heap events and the whole
    #: campaign is one drain interleaving every in-flight query.
    kernel: bool = False

    @classmethod
    def for_combination(cls, combo_id: str, **overrides) -> "ExperimentConfig":
        """Build the config for a Table 1 combination (e.g. '2C')."""
        combo = COMBINATIONS[combo_id]
        specs = [
            AuthoritativeSpec(name=f"ns{i + 1}", sites=(code,))
            for i, code in enumerate(combo.sites)
        ]
        return cls(authoritatives=specs, **overrides)


@dataclass
class ExperimentResult:
    """Outputs of one run: client-side run + server-side views."""

    config: ExperimentConfig
    run: MeasurementRun
    addresses: list[str]
    site_of_address: dict[str, str]
    server_query_counts: dict[str, int]
    deployment: Deployment
    #: the run's telemetry bundle (NULL_TELEMETRY when not requested)
    telemetry: object = NULL_TELEMETRY
    #: wall-clock phase profile of the simulator itself
    profile: dict = field(default_factory=dict)
    #: deterministic per-query cost ledger export (empty when disabled)
    costs: dict = field(default_factory=dict)

    @property
    def observations(self):
        return self.run.observations


class TestbedExperiment:
    """Deploys, measures, and collects one experiment."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(
        self,
        config: ExperimentConfig,
        telemetry=None,
        probes: list[Probe] | None = None,
        shard: int | None = None,
    ):
        self.config = config
        #: shard index stamped into heartbeat notes (None = unsharded)
        self.shard = shard
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Phase timings are always collected: a handful of perf_counter
        # calls per run, and the sidecar benchmarks consume them.
        self.profiler = (
            self.telemetry.profiler
            if self.telemetry.profiler.enabled
            else RunProfiler()
        )
        # Component seeds derive from the config seed by *path*, never by
        # sequential draws from one root stream: construction order and
        # population sharding cannot perturb any component's randomness.
        seed = config.seed
        self.network = SimNetwork(
            latency=LatencyModel(
                config.latency_params, seed=derive(seed, "latency")
            ),
            telemetry=self.telemetry,
        )
        self.deployment = Deployment(
            config.domain, config.authoritatives, telemetry=self.telemetry
        )
        self.population = ResolverPopulation(
            config.resolver_mix, seed=derive(seed, "population")
        )
        self.probe_seed = derive(seed, "probes")
        self.platform_seed = derive(seed, "platform")
        self.fault_seed = derive(seed, "faults")
        self.attack_seed = derive(seed, "attack")
        #: the compiled fault plan, set by :meth:`run` when a scenario
        #: is configured (None before the run or without one)
        self.fault_plan = None
        #: the compiled attack plan, set by :meth:`run` when an attack
        #: is configured (None before the run or without one)
        self.attack_plan = None
        #: pre-generated probe subset (shard workers); None = generate all
        self._probes = probes

    def _fault_scenario(self):
        """The run's Scenario, resolving names/paths against the duration."""
        scenario = self.config.scenario
        if scenario is None or not isinstance(scenario, str):
            return scenario
        from ..netsim.faults import resolve_scenario

        return resolve_scenario(scenario, self.config.duration_s)

    def _attack_profile(self):
        """The run's AttackProfile, resolving bundled names/paths."""
        attack = self.config.attack
        if attack is None or not isinstance(attack, str):
            return attack
        from ..netsim.adversary import resolve_attack

        return resolve_attack(attack)

    def run(self) -> ExperimentResult:
        profiler = self.profiler
        events = self.telemetry.events
        # Simulator observability (all no-ops unless requested): the
        # deterministic cost ledger, the allocation observatory, and the
        # sampling profiler scope to the same phase names as `profiler`.
        costs = self.telemetry.costs
        alloc = self.telemetry.alloc
        scenario = self._fault_scenario()
        attack = self._attack_profile()
        if events.enabled:
            from ..telemetry import RunMeta

            events.emit(RunMeta(run={
                "domain": self.config.domain,
                "sites": [list(spec.sites) for spec in self.config.authoritatives],
                "num_probes": self.config.num_probes,
                "interval_s": self.config.interval_s,
                "duration_s": self.config.duration_s,
                "seed": self.config.seed,
                "ipv6": self.config.ipv6,
                "scenario": scenario.name if scenario is not None else None,
                "attack": attack.name if attack is not None else None,
                "kernel": self.config.kernel,
            }))
        base = "2001:db8:53" if self.config.ipv6 else "10.0"
        with profiler.phase("experiment.deploy"), \
                costs.phase("experiment.deploy"), \
                alloc.phase("experiment.deploy"):
            addresses = self.deployment.deploy(self.network, base_address=base)
        if scenario is not None:
            from ..netsim.faults import FaultPlan

            self.fault_plan = FaultPlan(
                scenario,
                seed=self.fault_seed,
                addresses={
                    spec.name: address
                    for spec, address in zip(
                        self.config.authoritatives, addresses
                    )
                },
            )
            self.network.faults = self.fault_plan
            if events.enabled:
                # The timeline is data, known a priori: emitting the
                # transitions here (not when exchanges observe them)
                # keeps the merged parallel log byte-identical.
                from ..telemetry import Note

                for at, name, data in self.fault_plan.transitions():
                    events.emit(Note(name=name, data=data, at=at))
        if attack is not None:
            from ..netsim.adversary import AttackPlan

            self.attack_plan = AttackPlan(
                attack,
                seed=self.attack_seed,
                duration_s=self.config.duration_s,
                victim_domain=self.config.domain,
            )
            # The attacker's authoritative (delegation bombs) joins the
            # testbed at a fixed address outside the victim's range.
            self.attack_plan.deploy(self.network, telemetry=self.telemetry)
            limiter_factory = self.attack_plan.rate_limiter_factory()
            if limiter_factory is not None:
                # RRL on the victim's authoritatives: each engine gets
                # its own limiter (per-site state, like real deployments).
                for deployed in self.deployment.deployed:
                    for engine in deployed.engines.values():
                        engine.rate_limiter = limiter_factory()
            if events.enabled:
                # Like fault transitions: the attack window is data
                # known a priori, so the notes are emitted up front and
                # survive the canonical parallel merge.
                from ..telemetry import Note

                for at, name, data in self.attack_plan.transitions():
                    events.emit(Note(name=name, data=data, at=at))
        with profiler.phase("experiment.probes"), \
                costs.phase("experiment.probes"), \
                alloc.phase("experiment.probes"):
            if self._probes is not None:
                probes = list(self._probes)
            else:
                probes = ProbeGenerator(seed=self.probe_seed).generate(
                    self.config.num_probes
                )
                if self.config.ipv6:
                    probes = [probe for probe in probes if probe.ipv6_capable]
        # Imported lazily: ``atlas.platform`` itself imports
        # ``core.store``, so a module-level import here would close an
        # import cycle through the ``repro.core`` package.
        from ..atlas.platform import AtlasPlatform

        platform = AtlasPlatform(
            self.network, probes, self.population, seed=self.platform_seed,
            telemetry=self.telemetry,
            resolver_options=(
                self.attack_plan.resolver_options()
                if self.attack_plan is not None
                else None
            ),
        )
        platform.attack_plan = self.attack_plan
        with profiler.phase("experiment.build_vps"), \
                costs.phase("experiment.build_vps"), \
                alloc.phase("experiment.build_vps"):
            platform.build_vantage_points()
            platform.configure_zone(self.config.domain, addresses)
            if self.attack_plan is not None:
                stub = self.attack_plan.stub_zone()
                if stub is not None:
                    platform.configure_zone(stub[0], stub[1])
        # The sampler's window is exactly the measure phase: its
        # subsystem self-times partition the same interval the phase
        # timer measures, so shares in `repro-dns costs` sum to the
        # measured phase time.
        with profiler.phase("experiment.measure"), \
                costs.phase("experiment.measure"), \
                alloc.phase("experiment.measure"), \
                self.telemetry.sampler.activate():
            run = platform.measure(
                self.config.domain.rstrip("."),
                interval_s=self.config.interval_s,
                duration_s=self.config.duration_s,
                heartbeat_every=self.config.heartbeat_every_ticks,
                shard=self.shard,
                kernel=self.config.kernel,
            )
        profiler.record("config.combo_sites", [
            list(spec.sites) for spec in self.config.authoritatives
        ])
        profiler.record("config.num_probes", self.config.num_probes)
        profiler.record("config.seed", self.config.seed)
        profiler.count("experiment.runs")
        profiler.count("experiment.observations", len(run.store))
        if events.enabled:
            # Close out the log: end-state metrics + the phase profile.
            # (The writer stays open so callers can append more events.)
            self.telemetry.finalize_events(at=self.network.clock.now)
        return ExperimentResult(
            config=self.config,
            run=run,
            addresses=addresses,
            site_of_address=self.deployment.site_of_address(),
            server_query_counts=self.deployment.server_query_counts(),
            deployment=self.deployment,
            telemetry=self.telemetry,
            profile=profiler.as_dict(),
            costs=costs.as_dict() if costs.enabled else {},
        )


def run_combination(
    combo_id: str, telemetry=None, workers: int = 1, **overrides
):
    """Convenience: run one Table 1 combination end to end.

    ``workers > 1`` routes through the sharded engine
    (:func:`repro.core.parallel.run_parallel`); the merged result is
    identical to the serial one for any worker count.
    """
    config = ExperimentConfig.for_combination(combo_id, **overrides)
    if workers > 1:
        from .parallel import run_parallel

        return run_parallel(config, workers=workers, telemetry=telemetry)
    return TestbedExperiment(config, telemetry=telemetry).run()
