"""Canonical import path for the seed-derivation utility.

The implementation lives in :mod:`repro.seeding` (package root, stdlib
only) so low-level layers — :mod:`repro.netsim`, :mod:`repro.resolvers`
— can import it without creating an import cycle through
``repro.core.__init__``.  Application code should import from here::

    from repro.core.seeding import derive, derive_rng
"""

from __future__ import annotations

from ..seeding import SEED_BITS, SpawnKey, default_rng, derive, derive_rng

__all__ = ["SEED_BITS", "SpawnKey", "default_rng", "derive", "derive_rng"]
