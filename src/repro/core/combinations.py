"""Table 1: the seven authoritative-server combinations of the paper.

Each combination deploys 2-4 unicast authoritatives in AWS datacenters,
chosen to vary geographic proximity: the *A*/*C* variants spread sites
across continents, the *B* variants cluster them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Combination:
    """One row of Table 1."""

    combo_id: str
    sites: tuple[str, ...]
    paper_vp_count: int     # VPs the paper saw for this combination
    paper_probe_all_pct: float  # % of recursives that queried all NSes (Fig 2)

    @property
    def size(self) -> int:
        return len(self.sites)


#: Table 1 of the paper, including the per-combination results the
#: reproduction is compared against (x-axis labels of Figure 2).
COMBINATIONS: dict[str, Combination] = {
    combo.combo_id: combo
    for combo in [
        Combination("2A", ("GRU", "NRT"), 8702, 96.0),
        Combination("2B", ("DUB", "FRA"), 8685, 95.5),
        Combination("2C", ("FRA", "SYD"), 8658, 82.4),
        Combination("3A", ("GRU", "NRT", "SYD"), 8684, 91.3),
        Combination("3B", ("DUB", "FRA", "IAD"), 8693, 84.8),
        Combination("4A", ("GRU", "NRT", "SYD", "DUB"), 8702, 94.7),
        Combination("4B", ("DUB", "FRA", "IAD", "SFO"), 8689, 75.2),
    ]
}

#: The query intervals (minutes) of the paper's §4.4 frequency sweep,
#: run on combination 2C (Figure 6).
FIGURE6_INTERVALS_MIN: tuple[int, ...] = (2, 5, 10, 15, 20, 30)
