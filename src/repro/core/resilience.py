"""DDoS resilience of NS-set designs (§7 "Other Considerations").

The paper's secondary argument for anycast everywhere is resilience: the
companion study of the Nov 2015 Root event [18] showed anycast absorbs
volumetric attacks by spreading load across sites, while an overwhelmed
unicast authoritative simply drops queries.  This module models that:
every site has a capacity; attack traffic lands on sites according to
the bots' catchments; overloaded sites drop queries proportionally; and
recursives retry other NSes when one fails — so zone availability is
what the NS-*set* delivers, not any single server.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from statistics import mean

from ..atlas.probes import Probe
from ..netsim.anycast import AnycastGroup, AnycastSite
from ..netsim.geo import (
    ATLAS_CONTINENT_WEIGHTS,
    DATACENTERS,
    Continent,
    cities_by_continent,
)
from ..netsim.latency import LatencyModel
from ..seeding import default_rng
from .deployment import AuthoritativeSpec


@dataclass(frozen=True)
class AttackScenario:
    """A volumetric attack on some or all NSes of a zone."""

    total_qps: float
    #: geographic distribution of attack sources (defaults to the
    #: client skew — botnets are where the hosts are)
    origin_weights: dict[Continent, float] | None = None
    #: NS indices under attack; None means every NS is hit equally
    target_ns: tuple[int, ...] | None = None
    #: number of synthetic bot origins used to compute catchment spread
    bot_count: int = 300
    #: fetch-amplification factor at the recursives: every attack query
    #: multiplies into this many fetches against the targets (the
    #: NXNSAttack mechanism; 1.0 = a plain volumetric flood).
    amplification: float = 1.0

    def qps_per_target(self, ns_count: int) -> dict[int, float]:
        targets = (
            tuple(range(ns_count)) if self.target_ns is None else self.target_ns
        )
        if not targets:
            return {}
        share = self.total_qps * self.amplification / len(targets)
        return {index: share for index in targets}


def nxns_attack(
    bot_qps: float,
    fan_out: int,
    max_fetch: int | None = None,
    max_fetch_per_delegation: int | None = None,
    target_ns: tuple[int, ...] | None = None,
    bot_count: int = 300,
) -> AttackScenario:
    """An NXNSAttack as a capacity-model :class:`AttackScenario`.

    ``bot_qps`` is what the botnet sends at the recursives; what lands
    on the victim's NSes is that times the per-query fetch
    amplification, which mitigated resolvers cap at ``max_fetch`` (and
    per delegation at ``max_fetch_per_delegation``) — mirroring the
    bounds :class:`~repro.resolvers.resolver.RecursiveResolver`
    enforces in the packet-level simulation.
    """
    amplification = float(fan_out)
    if max_fetch_per_delegation is not None:
        amplification = min(amplification, float(max_fetch_per_delegation))
    if max_fetch is not None:
        amplification = min(amplification, float(max_fetch))
    return AttackScenario(
        total_qps=bot_qps,
        target_ns=target_ns,
        bot_count=bot_count,
        amplification=amplification,
    )


@dataclass
class SiteLoad:
    """Offered load vs. capacity for one site of one NS."""

    ns_name: str
    site_code: str
    capacity_qps: float
    offered_qps: float = 0.0

    @property
    def drop_probability(self) -> float:
        """Queries dropped once offered load exceeds capacity."""
        if self.offered_qps <= self.capacity_qps or self.offered_qps == 0.0:
            return 0.0
        return 1.0 - self.capacity_qps / self.offered_qps


@dataclass
class ResilienceReport:
    """Outcome of one design under one attack."""

    design_name: str
    availability: float          # fraction of client queries answered
    mean_latency_ms: float       # over answered queries, incl. retries
    site_loads: list[SiteLoad] = field(repr=False, default_factory=list)

    def overloaded_sites(self) -> list[SiteLoad]:
        return [load for load in self.site_loads if load.drop_probability > 0.0]


class ResilienceEvaluator:
    """Evaluates NS-set designs under volumetric attack."""

    def __init__(
        self,
        clients: list[Probe],
        latency: LatencyModel | None = None,
        site_capacity_qps: float = 100_000.0,
        legit_qps_per_client: float = 50.0,
        max_retries: int = 2,
        retry_penalty_ms: float = 800.0,
        rng: random.Random | None = None,
    ):
        if not clients:
            raise ValueError("evaluator needs clients")
        self.clients = clients
        self.latency = latency if latency is not None else LatencyModel()
        self.site_capacity_qps = site_capacity_qps
        self.legit_qps_per_client = legit_qps_per_client
        self.max_retries = max_retries
        self.retry_penalty_ms = retry_penalty_ms
        self.rng = rng if rng is not None else default_rng("core.resilience")

    # -- internals ---------------------------------------------------------

    def _group_for(self, spec: AuthoritativeSpec, index: int) -> AnycastGroup:
        group = AnycastGroup(
            f"resilience-{index}", suboptimal_rate=spec.suboptimal_rate
        )
        for code in spec.sites:
            group.add_site(AnycastSite(code, DATACENTERS[code], lambda *a: None))
        return group

    def _bot_origins(self, attack: AttackScenario) -> list:
        weights = dict(
            ATLAS_CONTINENT_WEIGHTS
            if attack.origin_weights is None
            else attack.origin_weights
        )
        continents = list(weights)
        probabilities = [weights[c] for c in continents]
        origins = []
        for index in range(attack.bot_count):
            continent = self.rng.choices(continents, weights=probabilities, k=1)[0]
            origins.append(
                (f"bot-{index}", self.rng.choice(cities_by_continent(continent)))
            )
        return origins

    def _site_loads(
        self,
        specs: list[AuthoritativeSpec],
        groups: list[AnycastGroup],
        attack: AttackScenario,
    ) -> dict[tuple[int, str], SiteLoad]:
        """Distribute legitimate + attack traffic over every site."""
        loads: dict[tuple[int, str], SiteLoad] = {}
        for index, spec in enumerate(specs):
            for code in spec.sites:
                loads[(index, code)] = SiteLoad(
                    ns_name=spec.name,
                    site_code=code,
                    capacity_qps=self.site_capacity_qps,
                )
        # Legitimate load spreads across all NSes (every NS gets queries).
        legit_per_ns = (
            len(self.clients) * self.legit_qps_per_client / len(specs)
        )
        for index, group in enumerate(groups):
            per_client = legit_per_ns / len(self.clients)
            for client in self.clients:
                site = group.catchment(client.location, client.address, self.latency)
                loads[(index, site.code)].offered_qps += per_client
        # Attack load lands by the bots' catchments.
        attack_per_ns = attack.qps_per_target(len(specs))
        if attack_per_ns:
            origins = self._bot_origins(attack)
            for index, qps in attack_per_ns.items():
                per_bot = qps / len(origins)
                for key, location in origins:
                    site = groups[index].catchment(location, key, self.latency)
                    loads[(index, site.code)].offered_qps += per_bot
        return loads

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        specs: list[AuthoritativeSpec],
        attack: AttackScenario,
        name: str = "design",
    ) -> ResilienceReport:
        groups = [self._group_for(spec, i) for i, spec in enumerate(specs)]
        loads = self._site_loads(specs, groups, attack)

        availabilities = []
        latencies = []
        for client in self.clients:
            # Which site (and hence drop probability / RTT) each NS
            # presents to this client.
            per_ns = []
            for index, group in enumerate(groups):
                site = group.catchment(client.location, client.address, self.latency)
                rtt = self.latency.base_rtt_ms(
                    client.location.point, site.location.point
                )
                drop = loads[(index, site.code)].drop_probability
                per_ns.append((rtt, drop))
            # Latency-ordered retry chain (resolvers fail over to the
            # next-best NS after a timeout).
            per_ns.sort()
            answered = 0.0
            expected_latency = 0.0
            cumulative_failure = 1.0
            for attempt, (rtt, drop) in enumerate(per_ns[: self.max_retries + 1]):
                success_here = cumulative_failure * (1.0 - drop)
                answered += success_here
                expected_latency += success_here * (
                    rtt + attempt * self.retry_penalty_ms
                )
                cumulative_failure *= drop
            availabilities.append(answered)
            if answered > 0:
                latencies.append(expected_latency / answered)
        return ResilienceReport(
            design_name=name,
            availability=mean(availabilities),
            mean_latency_ms=mean(latencies) if latencies else float("inf"),
            site_loads=list(loads.values()),
        )

    def fault_scenario(
        self,
        specs: list[AuthoritativeSpec],
        attack: AttackScenario,
        start: float,
        end: float,
        name: str = "attack-brownout",
    ):
        """The attack as a runnable fault timeline for the simulator.

        The capacity model is static: it says *how much* each NS can
        still answer under the attack, not what resolvers then do about
        it.  This bridge turns each overloaded NS's aggregate answer
        rate into a :class:`~repro.netsim.faults.Brownout` over
        [start, end), so the same attack can be replayed as a live
        mid-campaign event against the real retry/selector machinery.
        """
        from ..netsim.faults import Brownout, Scenario

        groups = [self._group_for(spec, i) for i, spec in enumerate(specs)]
        loads = self._site_loads(specs, groups, attack)
        events = []
        for index, spec in enumerate(specs):
            offered = sum(
                load.offered_qps
                for (ns_index, _), load in loads.items()
                if ns_index == index
            )
            answered = sum(
                min(load.offered_qps, load.capacity_qps)
                for (ns_index, _), load in loads.items()
                if ns_index == index
            )
            if offered <= 0.0 or answered >= offered:
                continue
            events.append(
                Brownout(
                    target=spec.name,
                    start=start,
                    end=end,
                    answer_rate=answered / offered,
                )
            )
        return Scenario(
            name=name,
            description=(
                f"{attack.total_qps:g} qps attack replayed as per-NS "
                "brownouts from the capacity model"
            ),
            events=tuple(events),
        )

    def compare(
        self,
        designs: dict[str, list[AuthoritativeSpec]],
        attack: AttackScenario,
    ) -> list[ResilienceReport]:
        """Evaluate every design under the same attack, best first."""
        reports = [
            self.evaluate(specs, attack, name=name)
            for name, specs in designs.items()
        ]
        reports.sort(key=lambda report: report.availability, reverse=True)
        return reports
