"""Command-line interface: run, analyze, and plan from the shell.

Usage (also available as ``python -m repro``):

    repro-dns combos
    repro-dns run --combo 2C --probes 300 --out run.jsonl
    repro-dns analyze --run run.jsonl --sites FRA SYD
    repro-dns metrics --combo 2C --probes 100
    repro-dns trace --combo 2C --count 2
    repro-dns dashboard run.events.jsonl
    repro-dns forensics run.events.jsonl probe-7
    repro-dns slo run.events.jsonl --check
    repro-dns top --from-log run.events.jsonl
    repro-dns bench-diff benchmarks/baseline.json benchmarks/.bench_profile.json
    repro-dns costs --combo 2C --probes 300 --flamegraph flame.txt
    repro-dns bench-history --record --sidecar benchmarks/.bench_profile.json
    repro-dns sweep --probes 150
    repro-dns passive --kind root --recursives 250 --out trace.jsonl
    repro-dns plan --clients 500 --sites FRA IAD SYD GRU --home FRA

Global flags (before the subcommand): ``--output FILE`` sends command
output to a file instead of stdout, ``--quiet`` silences progress
notes, ``--log-level`` wires the ``repro.*`` loggers to stderr.
"""

from __future__ import annotations

import argparse
import logging
import os
import random
import sys
from pathlib import Path

from .analysis import (
    analyze_interval_sweep,
    analyze_preference,
    analyze_probe_all,
    analyze_query_share,
    analyze_rank_bands,
    render_interval_sweep,
    render_preference,
    render_probe_all,
    render_query_share,
    render_rank_bands,
    render_table,
    render_table2,
    table2_rows,
)
from .atlas import ProbeGenerator
from .core import (
    COMBINATIONS,
    FIGURE6_INTERVALS_MIN,
    DeploymentPlanner,
    ExperimentConfig,
    SelectionModel,
    TestbedExperiment,
    load_run,
    run_combination,
    save_run,
    sidn_style_designs,
)
from .netsim import DATACENTERS
from .passive import generate_ditl_trace, generate_nl_trace, save_trace


class CliWriter:
    """Routes command output: stdout, a ``--output`` file, or nowhere.

    Two channels, deliberately separate:

    :meth:`emit`
        The command's *product* (tables, dumps, dashboards).  Goes to
        stdout, or to the ``--output`` file when one is given — so
        results can be saved or piped without shell redirection.
    :meth:`status`
        Progress notes ("running 2C ...").  Always stderr, and
        silenced entirely by ``--quiet``.
    """

    def __init__(self, output: str | None = None, quiet: bool = False):
        self.quiet = quiet
        self.path = Path(output) if output else None
        self._fh = self.path.open("w") if self.path else None

    def emit(self, text: object = "") -> None:
        """One block of command output (adds the trailing newline)."""
        stream = self._fh if self._fh is not None else sys.stdout
        stream.write(str(text) + "\n")

    def status(self, text: object) -> None:
        """A progress note on stderr; suppressed by ``--quiet``."""
        if not self.quiet:
            print(text, file=sys.stderr)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _configure_logging(level_name: str) -> None:
    """Wire the ``repro.*`` logger tree to stderr at the chosen level.

    The package root has a ``NullHandler`` (library etiquette); the CLI
    is an application, so it attaches a real handler — but only one,
    and only to the ``repro`` logger, never the root logger.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level_name.upper()))
    if not any(
        isinstance(handler, logging.StreamHandler)
        and not isinstance(handler, logging.NullHandler)
        for handler in logger.handlers
    ):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)


def _cmd_combos(args: argparse.Namespace) -> int:
    rows = [
        [combo.combo_id, ", ".join(combo.sites), str(combo.paper_vp_count)]
        for combo in COMBINATIONS.values()
    ]
    args.io.emit(render_table(["ID", "locations", "paper VPs"], rows, title="Table 1"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    io = args.io
    config = ExperimentConfig.for_combination(
        args.combo,
        num_probes=args.probes,
        interval_s=args.interval * 60.0,
        duration_s=args.duration * 60.0,
        seed=args.seed,
        ipv6=args.ipv6,
        scenario=args.scenario,
        heartbeat_every_ticks=args.heartbeat_every,
        kernel=args.kernel,
    )
    io.status(
        f"running {args.combo} ({', '.join(COMBINATIONS[args.combo].sites)}): "
        f"{args.probes} probes, every {args.interval} min for {args.duration} min"
    )
    telemetry = None
    if args.events:
        from .telemetry import Telemetry

        telemetry = Telemetry.enabled_bundle(event_log=args.events)
    if args.workers > 1 or args.shards:
        from .core import run_parallel

        result = run_parallel(
            config,
            workers=args.workers,
            shards=args.shards or None,
            telemetry=telemetry,
            spill_dir=args.spill_events,
        )
        io.status(
            f"merged {result.shards} shards from {result.workers} worker(s)"
        )
    else:
        result = TestbedExperiment(config, telemetry=telemetry).run()
    io.status(
        f"{len(result.observations)} observations from {result.run.vp_count} VPs"
    )
    if args.events:
        telemetry.events.close()
        io.status(f"wrote event log to {args.events}")
    if args.out:
        written = save_run(result.run, args.out)
        io.status(f"wrote {written} observations to {args.out}")
    if not args.no_analyze:
        sites = set(COMBINATIONS[args.combo].sites)
        ticks = int(config.duration_s // config.interval_s)
        _print_analyses(io, result.observations, sites, args.combo, ticks)
    return 0


def _print_analyses(io: CliWriter, observations, sites, combo_id, ticks: int = 30) -> None:
    # Short campaigns need a lower per-VP query threshold.
    min_queries = max(3, min(10, ticks - 2))
    io.emit()
    io.emit(
        render_probe_all(
            [analyze_probe_all(observations, sites, combo_id, min_queries=min_queries)]
        )
    )
    io.emit()
    io.emit(render_query_share([analyze_query_share(observations, sites, combo_id)]))
    io.emit()
    io.emit(
        render_preference(
            [analyze_preference(observations, sites, combo_id, min_queries=min_queries)]
        )
    )
    io.emit()
    io.emit(
        render_table2(
            {combo_id: table2_rows(observations, sites, min_queries=min_queries)}
        )
    )


def _cmd_faults_list(args: argparse.Namespace) -> int:
    from .netsim.faults import BUILTIN_SCENARIOS, builtin_scenario

    rows = [
        [name, description]
        for name, (_, description) in sorted(BUILTIN_SCENARIOS.items())
    ]
    args.io.emit(
        render_table(["scenario", "description"], rows, title="Bundled fault scenarios")
    )
    if args.duration:
        duration_s = args.duration * 60.0
        for name in sorted(BUILTIN_SCENARIOS):
            scenario = builtin_scenario(name, duration_s)
            args.io.emit()
            args.io.emit(f"{name} @ {args.duration:g} min:")
            for event in scenario.events:
                knobs = "".join(
                    f" {key}={value}" for key, value in event.params().items()
                )
                args.io.emit(
                    f"  {event.kind:<16} {event.target:<6} "
                    f"[{event.start:g}s, {event.end:g}s){knobs}"
                )
    return 0


def _cmd_faults_run(args: argparse.Namespace) -> int:
    io = args.io
    duration_s = args.duration * 60.0
    from .netsim.faults import FaultPlan, ScenarioError, resolve_scenario

    try:
        scenario = resolve_scenario(args.scenario, duration_s)
    except ScenarioError as exc:
        io.status(f"error: {exc}")
        return 2
    config = ExperimentConfig.for_combination(
        args.combo,
        num_probes=args.probes,
        interval_s=args.interval * 60.0,
        duration_s=duration_s,
        seed=args.seed,
        scenario=scenario,
        kernel=args.kernel,
    )
    io.status(
        f"running {args.combo} under scenario {scenario.name!r} "
        f"({len(scenario.events)} fault event(s)): {args.probes} probes, "
        f"every {args.interval:g} min for {args.duration:g} min"
    )
    telemetry = None
    if args.events:
        from .telemetry import Telemetry

        telemetry = Telemetry.enabled_bundle(event_log=args.events)
    if args.workers > 1 or args.shards:
        from .core import run_parallel

        result = run_parallel(
            config,
            workers=args.workers,
            shards=args.shards or None,
            telemetry=telemetry,
            spill_dir=args.spill_events,
        )
        io.status(
            f"merged {result.shards} shards from {result.workers} worker(s)"
        )
    else:
        result = TestbedExperiment(config, telemetry=telemetry).run()
    if args.events:
        telemetry.events.close()
        io.status(f"wrote event log to {args.events}")
    if args.out:
        written = save_run(result.run, args.out)
        io.status(f"wrote {written} observations to {args.out}")
    if args.export:
        scenario.save(args.export)
        io.status(f"wrote scenario file to {args.export}")

    # Rebuild the plan purely for reporting: the resolved timeline and
    # the fault-windowed query shares (the seed never matters here).
    ns_of_address = {
        address: spec.name
        for spec, address in zip(config.authoritatives, result.addresses)
    }
    plan = FaultPlan(
        scenario,
        seed=0,
        addresses={name: addr for addr, name in ns_of_address.items()},
    )
    io.emit("fault timeline:")
    for at, name, data in plan.transitions():
        knobs = "".join(
            f" {key}={value}"
            for key, value in data.items()
            if key not in ("fault", "address", "target")
        )
        io.emit(
            f"  {at:9.1f}s  {name:<11} {data['fault']:<16} "
            f"{data['target']} ({data['address']}){knobs}"
        )
    _print_fault_windows(io, result.observations, ns_of_address, plan, duration_s)
    return 0


def _print_fault_windows(
    io: CliWriter, observations, ns_of_address: dict, plan, duration_s: float
) -> None:
    """Query share per NS inside each window between fault transitions."""
    boundaries = sorted(
        {0.0, duration_s}
        | {at for at, _, _ in plan.transitions() if 0.0 < at < duration_s}
    )
    windows = list(zip(boundaries, boundaries[1:]))
    addresses = sorted(ns_of_address)
    rows = []
    for begin, end in windows:
        window = [
            obs for obs in observations if begin <= obs.timestamp < end
        ]
        total = len(window)
        counts = {address: 0 for address in addresses}
        failed = 0
        for obs in window:
            if obs.succeeded and obs.authoritative in counts:
                counts[obs.authoritative] += 1
            elif not obs.succeeded:
                failed += 1
        def share(count):
            return f"{100.0 * count / total:5.1f}%" if total else "-"
        rows.append(
            [f"{begin:g}-{end:g}s", str(total)]
            + [share(counts[address]) for address in addresses]
            + [share(failed)]
        )
    io.emit()
    io.emit(
        render_table(
            ["window", "queries"]
            + [f"{ns_of_address[a]} ({a})" for a in addresses]
            + ["SERVFAIL"],
            rows,
            title="query share per fault window",
        )
    )


def _cmd_attack_list(args: argparse.Namespace) -> int:
    from .netsim.adversary import BUILTIN_ATTACKS

    rows = [
        [name, profile.vector, description]
        for name, (profile, description) in sorted(BUILTIN_ATTACKS.items())
    ]
    args.io.emit(
        render_table(
            ["attack", "vector", "description"], rows,
            title="Bundled attack profiles",
        )
    )
    return 0


def _cmd_attack_run(args: argparse.Namespace) -> int:
    io = args.io
    duration_s = args.duration * 60.0
    from .netsim.adversary import (
        AttackError,
        AttackPlan,
        resolve_attack,
        scaled_profile,
    )

    overrides = {
        key: value
        for key, value in {
            "bot_share": args.bot_share,
            "fan_out": args.fan_out,
            "max_fetch": args.max_fetch,
            "max_fetch_per_delegation": args.max_fetch_per_delegation,
            "rrl_qps": args.rrl_qps,
        }.items()
        if value is not None
    }
    try:
        profile = resolve_attack(args.attack)
        if overrides:
            profile = scaled_profile(profile, **overrides)
    except AttackError as exc:
        io.status(f"error: {exc}")
        return 2
    config = ExperimentConfig.for_combination(
        args.combo,
        num_probes=args.probes,
        interval_s=args.interval * 60.0,
        duration_s=duration_s,
        seed=args.seed,
        attack=profile,
        kernel=args.kernel,
    )
    mitigations = []
    if profile.max_fetch is not None:
        mitigations.append(f"max_fetch={profile.max_fetch}")
    if profile.max_fetch_per_delegation is not None:
        mitigations.append(
            f"per_delegation={profile.max_fetch_per_delegation}"
        )
    if profile.rrl_qps is not None:
        mitigations.append(f"rrl_qps={profile.rrl_qps}")
    io.status(
        f"running {args.combo} under attack {profile.name!r} "
        f"({profile.vector}, bot_share={profile.bot_share:g}, "
        f"{', '.join(mitigations) if mitigations else 'unmitigated'}): "
        f"{args.probes} probes, every {args.interval:g} min "
        f"for {args.duration:g} min"
    )
    from .telemetry import Telemetry

    # The ledger is always on: fetch-amplification accounting is the
    # attack report.  The event log only when a path was requested.
    telemetry = Telemetry.enabled_bundle(
        metrics=bool(args.events),
        tracing=bool(args.events),
        event_log=args.events or None,
        costs=True,
    )
    if args.workers > 1 or args.shards:
        from .core import run_parallel

        result = run_parallel(
            config,
            workers=args.workers,
            shards=args.shards or None,
            telemetry=telemetry,
            spill_dir=args.spill_events,
        )
        io.status(
            f"merged {result.shards} shards from {result.workers} worker(s)"
        )
    else:
        result = TestbedExperiment(config, telemetry=telemetry).run()
    if args.events:
        telemetry.events.close()
        io.status(f"wrote event log to {args.events}")
    if args.export_costs:
        telemetry.costs.write(args.export_costs)
        io.status(f"wrote cost ledger to {args.export_costs}")
    if args.out:
        written = save_run(result.run, args.out)
        io.status(f"wrote {written} observations to {args.out}")
    if args.export:
        profile.save(args.export)
        io.status(f"wrote attack profile to {args.export}")

    # Rebuild the plan purely for reporting (window edges are data).
    plan = AttackPlan(
        profile, seed=0, duration_s=duration_s, victim_domain=config.domain
    )
    io.emit("attack timeline:")
    for at, name, data in plan.transitions():
        knobs = "".join(
            f" {key}={value}"
            for key, value in data.items()
            if key not in ("attack", "vector") and value is not None
        )
        io.emit(
            f"  {at:9.1f}s  {name:<12} {data['attack']:<20} "
            f"({data['vector']}){knobs}"
        )
    _print_amplification(io, telemetry.costs)
    ns_of_address = {
        address: spec.name
        for spec, address in zip(config.authoritatives, result.addresses)
    }
    _print_fault_windows(io, result.observations, ns_of_address, plan, duration_s)
    return 0


def _print_amplification(io: CliWriter, costs) -> None:
    """Fetch-amplification + RRL accounting from the cost ledger."""
    totals = costs.totals()
    attack_queries = totals.get("attack_query", 0)
    fetches = totals.get("ns_fetch", 0)
    rows = [
        ["client queries", str(totals.get("query", 0))],
        ["attack queries", str(attack_queries)],
        ["glueless NS fetches", str(fetches)],
    ]
    if attack_queries:
        rows.append(
            ["fetch amplification", f"{fetches / attack_queries:.2f}x"]
        )
    checks = totals.get("rrl_check", 0)
    if checks:
        rows.extend([
            ["RRL checks", str(checks)],
            ["RRL slipped (TC)", str(totals.get("rrl_slip", 0))],
            ["RRL dropped", str(totals.get("rrl_drop", 0))],
        ])
    io.emit()
    io.emit(render_table(["metric", "value"], rows, title="attack accounting"))


def _cmd_analyze(args: argparse.Namespace) -> int:
    run = load_run(args.run)
    sites = set(args.sites)
    args.io.emit(
        f"{len(run.observations)} observations, {run.vp_count} VPs, domain {run.domain}"
    )
    ticks = int(run.duration_s // run.interval_s) if run.interval_s else 30
    _print_analyses(args.io, run.observations, sites, args.combo, ticks)
    return 0


def _run_with_telemetry(args: argparse.Namespace, tracing: bool):
    """Shared by metrics/dashboard: one instrumented seeded run."""
    from .telemetry import Telemetry

    telemetry = Telemetry.enabled_bundle(
        tracing=tracing, event_log=getattr(args, "events", None)
    )
    config = ExperimentConfig.for_combination(
        args.combo,
        num_probes=args.probes,
        interval_s=args.interval * 60.0,
        duration_s=args.duration * 60.0,
        seed=args.seed,
    )
    args.io.status(
        f"running {args.combo} with telemetry: {args.probes} probes, "
        f"every {args.interval:g} min for {args.duration:g} min"
    )
    result = TestbedExperiment(config, telemetry=telemetry).run()
    args.io.status(
        f"{len(result.observations)} observations from {result.run.vp_count} VPs"
    )
    return telemetry, result


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run a combination with telemetry and dump the metrics registry."""
    io = args.io
    telemetry, _ = _run_with_telemetry(args, tracing=bool(args.events))
    if args.events:
        telemetry.events.close()
        io.status(f"wrote event log to {args.events}")
    # Telemetry self-accounting (dropped traces/events) belongs in the
    # dump: silent loss is the one thing a metrics page may not hide.
    telemetry.surface_drop_counters()
    text = (
        telemetry.registry.to_json(indent=2)
        if args.format == "json"
        else telemetry.registry.to_prometheus_text()
    )
    io.emit(text if not text.endswith("\n") else text[:-1])
    if args.profile:
        io.status("")
        io.status(telemetry.profiler.render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace cache-busting queries through resolver, network, and NS."""
    from .telemetry import Telemetry, render_trace

    io = args.io
    telemetry = Telemetry.enabled_bundle()
    config = ExperimentConfig.for_combination(
        args.combo,
        num_probes=args.probes,
        interval_s=120.0,
        duration_s=args.ticks * 120.0,
        seed=args.seed,
    )
    TestbedExperiment(config, telemetry=telemetry).run()
    printed = 0
    for root in telemetry.tracer.traces():
        if root.name != "resolver.resolve":
            continue
        if args.cache_misses_only and root.attributes.get("cache") != "miss":
            continue
        io.emit(render_trace(root))
        io.emit()
        printed += 1
        if printed >= args.count:
            break
    if printed == 0:
        io.status("no matching traces captured")
        return 1
    io.status(
        f"{printed} of {len(telemetry.tracer.traces())} captured traces shown"
    )
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    """Render the run scorecard from a saved event log or a live run."""
    from .telemetry.dashboard import render_dashboard, render_dashboard_from_log

    io = args.io
    if args.log and args.follow:
        return _dashboard_follow(args)
    if args.log:
        io.emit(render_dashboard_from_log(args.log, top_slowest=args.top))
        return 0
    telemetry, _ = _run_with_telemetry(args, tracing=True)
    if args.events:
        telemetry.events.close()
        io.status(f"wrote event log to {args.events}")
    io.emit(
        render_dashboard(
            telemetry.registry.as_dict(),
            traces=telemetry.tracer.traces(),
            title=f"Run dashboard — live {args.combo} seed={args.seed} "
            f"probes={args.probes}",
            top_slowest=args.top,
        )
    )
    return 0


def _dashboard_follow(args: argparse.Namespace) -> int:
    """Tail a growing event log; render the scorecard once it closes."""
    import time as _time

    from .telemetry import EventLog, EventLogFollower, MetricsSnapshot
    from .telemetry.dashboard import render_dashboard_from_log

    io = args.io
    events: list = []
    with EventLogFollower(args.log) as follower:
        deadline = _time.monotonic() + args.idle_timeout
        while True:
            batch = follower.poll()
            if batch:
                events.extend(batch)
                deadline = _time.monotonic() + args.idle_timeout
                io.status(f"following {args.log}: {len(events)} events ...")
                if any(isinstance(e, MetricsSnapshot) for e in batch):
                    break  # the closing snapshot: the run is finalized
            elif _time.monotonic() >= deadline:
                io.status(
                    f"no new events for {args.idle_timeout:g}s; "
                    "rendering what arrived"
                )
                break
            else:
                _time.sleep(args.refresh)
        log = EventLog(path=follower.path, meta=follower.meta, events=events)
    io.emit(render_dashboard_from_log(log, top_slowest=args.top))
    return 0


def _cmd_forensics(args: argparse.Namespace) -> int:
    """Critical paths, latency attribution, and slow-query exemplars."""
    from .telemetry import EventLogError, TraceAnalytics, render_forensics

    io = args.io
    try:
        analytics = TraceAnalytics.from_log(args.log)
    except (OSError, EventLogError) as exc:
        io.status(f"forensics: {exc}")
        return 2
    if not analytics.roots:
        io.status(f"forensics: {args.log} holds no resolution traces")
        return 1
    if args.selector and not analytics.find(args.selector):
        io.status(f"forensics: nothing matches {args.selector!r}")
        return 1
    io.emit(render_forensics(analytics, selector=args.selector, top=args.top))
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """Evaluate SLOs over an event log; score against injected faults."""
    from .telemetry import (
        EventLogError,
        SLOError,
        TraceAnalytics,
        default_slos,
        evaluate_slos,
        render_slo_report,
    )
    from .telemetry.slo import load_slo_spec

    io = args.io
    try:
        analytics = TraceAnalytics.from_log(args.log)
        slos = (
            load_slo_spec(args.spec)
            if args.spec
            else default_slos(window_s=args.window)
        )
        report = evaluate_slos(
            analytics.roots,
            slos,
            faults=analytics.fault_windows,
            slack_s=args.slack,
        )
    except (OSError, EventLogError, SLOError) as exc:
        io.status(f"slo: {exc}")
        return 2
    io.emit(render_slo_report(report))
    alerting = any(report.alerts[slo.name] for slo in report.slos)
    return 1 if alerting and args.check else 0


def _follow_monitor(args: argparse.Namespace, path: str) -> int:
    """Shared tail loop behind ``top --follow`` and live mode."""
    import time as _time

    from .telemetry import EventLogFollower
    from .telemetry.monitor import CampaignMonitor

    io = args.io
    monitor = CampaignMonitor()
    title = f"repro-dns top — {path}"
    frames = 0
    with EventLogFollower(path) as follower:
        deadline = _time.monotonic() + args.idle_timeout
        while True:
            if monitor.consume(follower.poll()):
                deadline = _time.monotonic() + args.idle_timeout
                frames += 1
                if not monitor.finished:
                    io.status(monitor.render(title=title))
                    io.status("")
            if monitor.finished:
                break
            if args.max_frames and frames >= args.max_frames:
                break
            if _time.monotonic() >= deadline:
                io.status(
                    f"no new events for {args.idle_timeout:g}s; stopping"
                )
                break
            _time.sleep(args.refresh)
    io.emit(monitor.render(title=title))
    return 0


def _top_live(args: argparse.Namespace) -> int:
    """Run a serial campaign in a thread and tail its event log live."""
    import tempfile
    import threading

    from .telemetry import Telemetry

    io = args.io
    path = args.events
    scratch = None
    if not path:
        fd, path = tempfile.mkstemp(prefix="repro-top-", suffix=".jsonl")
        os.close(fd)
        scratch = path
    config = ExperimentConfig.for_combination(
        args.combo,
        num_probes=args.probes,
        interval_s=args.interval * 60.0,
        duration_s=args.duration * 60.0,
        seed=args.seed,
        scenario=args.scenario,
        heartbeat_every_ticks=max(1, args.heartbeat_every),
    )
    # Build the writer here (not in the thread): the header line lands
    # before the follower opens the file, so it never races the run.
    telemetry = Telemetry.enabled_bundle(event_log=path)
    io.status(
        f"running {args.combo} live ({args.probes} probes); tailing {path}"
    )
    failures: list[BaseException] = []

    def _run() -> None:
        try:
            TestbedExperiment(config, telemetry=telemetry).run()
        except BaseException as exc:  # surface, never swallow
            failures.append(exc)
        finally:
            telemetry.events.close()

    thread = threading.Thread(target=_run, name="repro-top-run", daemon=True)
    thread.start()
    try:
        status = _follow_monitor(args, path)
    finally:
        thread.join()
        if scratch:
            os.unlink(scratch)
    if failures:
        raise failures[0]
    return status


def _cmd_top(args: argparse.Namespace) -> int:
    """The live campaign monitor (and its saved-log replay mode)."""
    from .telemetry import EventLogError

    io = args.io
    if not args.from_log:
        return _top_live(args)
    try:
        if args.follow:
            return _follow_monitor(args, args.from_log)
        from .telemetry import read_events
        from .telemetry.monitor import replay_monitor

        monitor = replay_monitor(list(read_events(args.from_log)))
    except (OSError, EventLogError) as exc:
        io.status(f"top: {exc}")
        return 2
    io.emit(monitor.render(title=f"repro-dns top — {args.from_log}"))
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    """Compare two bench-profile sidecars; non-zero exit on regression."""
    from .telemetry.regression import SidecarError, diff_sidecar_files

    io = args.io
    try:
        diff = diff_sidecar_files(
            args.base,
            args.new,
            phase_threshold=args.phase_threshold,
            min_seconds=args.min_seconds,
            counter_threshold=args.counter_threshold,
            force=args.force,
            phases=(
                [p for p in args.phases.split(",") if p]
                if args.phases
                else None
            ),
        )
    except SidecarError as exc:
        io.status(f"bench-diff: {exc}")
        return 2
    io.emit(diff.render())
    return 1 if diff.regressed else 0


def _render_cost_decomposition(ledger, measure_s, sampler) -> str:
    """The per-query overhead table: where a simulated query's time goes.

    ``measure_s`` is the wall-clock measure phase; divided by the
    ledger's query count it is the per-query cost the DES kernel has to
    beat.  When a sampling profiler covered the phase, its subsystem
    self-times split that number further.
    """
    lines = ["=== Per-query overhead decomposition ==="]
    queries = ledger.queries
    if not queries:
        lines.append("no queries recorded")
        return "\n".join(lines)
    if measure_s is None:
        lines.append(f"{queries} queries (no measured phase time)")
        return "\n".join(lines)
    total_us = measure_s / queries * 1e6
    lines.append(
        f"measure phase {measure_s:.3f}s / {queries} queries "
        f"= {total_us:.1f} us/query"
    )
    if sampler is not None and sampler.enabled and sampler.window_s:
        lines.append("")
        lines.append(f"{'subsystem':<12} {'self(s)':>9} {'us/query':>10} {'share':>7}")
        attributed = 0.0
        for sub, stats in sorted(
            sampler.as_dict()["subsystems"].items(),
            key=lambda item: item[1]["self_s"],
            reverse=True,
        ):
            self_s = stats["self_s"]
            attributed += self_s
            lines.append(
                f"{sub:<12} {self_s:>9.3f} {self_s / queries * 1e6:>10.1f} "
                f"{self_s / measure_s:>6.1%}"
            )
        lines.append(
            f"attributed {attributed:.3f}s of {measure_s:.3f}s measured "
            f"({attributed / measure_s:.1%})"
        )
    return "\n".join(lines)


def _cmd_costs(args: argparse.Namespace) -> int:
    """Per-query cost ledger: from a saved event log, or a live run."""
    from .telemetry import CostLedger

    io = args.io
    if args.log:
        from .telemetry import CostsEvent, EventLogError, read_events

        ledger = None
        try:
            for event in read_events(args.log):
                if isinstance(event, CostsEvent):
                    ledger = CostLedger.from_dict(event.costs)
        except (OSError, EventLogError) as exc:
            io.status(f"costs: {exc}")
            return 2
        if ledger is None:
            io.status(
                f"{args.log}: no costs record "
                "(produce one with 'repro-dns costs --events FILE')"
            )
            return 1
        if args.export:
            Path(args.export).write_text(ledger.to_json(indent=2) + "\n")
            io.status(f"wrote cost ledger to {args.export}")
        io.emit(ledger.render())
        return 0

    from .telemetry import Telemetry

    mode = args.profile_mode
    parallel = args.workers > 1 or args.shards
    if parallel and mode != "off":
        # The profiler and the allocation observatory watch *this*
        # process; shard workers run elsewhere.  The ledger merges.
        io.status("sharded run: ledger only (profilers are in-process)")
        mode = "off"
    telemetry = Telemetry.enabled_bundle(
        metrics=False,
        tracing=False,
        costs=True,
        sampling=None if mode == "off" else mode,
        profile_alloc=args.profile_alloc and not parallel,
        event_log=args.events,
    )
    config = ExperimentConfig.for_combination(
        args.combo,
        num_probes=args.probes,
        interval_s=args.interval * 60.0,
        duration_s=args.duration * 60.0,
        seed=args.seed,
        scenario=args.scenario,
        kernel=args.kernel,
    )
    io.status(
        f"costing {args.combo}: {args.probes} probes, "
        f"every {args.interval:g} min for {args.duration:g} min"
        + (f" (profile mode: {mode})" if mode != "off" else "")
    )
    with telemetry.alloc.activate():
        if parallel:
            from .core import run_parallel

            result = run_parallel(
                config,
                workers=args.workers,
                shards=args.shards or None,
                telemetry=telemetry,
            )
        else:
            result = TestbedExperiment(config, telemetry=telemetry).run()
    if args.events:
        telemetry.events.close()
        io.status(f"wrote event log to {args.events}")
    measure = result.profile.get("phases", {}).get("experiment.measure")
    measure_s = measure["seconds"] if measure else None
    ledger = telemetry.costs
    sampler = telemetry.sampler
    io.emit(
        _render_cost_decomposition(
            ledger, measure_s, sampler if mode != "off" else None
        )
    )
    io.emit()
    io.emit(ledger.render())
    if mode != "off":
        io.emit()
        io.emit(sampler.render())
    if args.profile_alloc and telemetry.alloc.enabled:
        io.emit()
        io.emit(telemetry.alloc.render())
    if args.export:
        Path(args.export).write_text(ledger.to_json(indent=2) + "\n")
        io.status(f"wrote cost ledger to {args.export}")
    if args.flamegraph:
        collapsed = sampler.collapsed()
        if not collapsed:
            io.status(
                "flamegraph: no collapsed stacks "
                "(use --profile-mode sample on a serial run)"
            )
            return 1
        Path(args.flamegraph).write_text(collapsed + "\n")
        io.status(f"wrote collapsed stacks to {args.flamegraph}")
    return 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    """Record and render the append-only bench trajectory."""
    from .telemetry.history import (
        HistoryError,
        append_entry,
        load_history,
        render_history,
    )

    io = args.io
    if args.record:
        from .telemetry.regression import SidecarError, load_sidecar

        try:
            sidecar = load_sidecar(args.sidecar, force=args.force)
        except SidecarError as exc:
            io.status(f"bench-history: {exc}")
            return 2
        path = append_entry(args.dir, sidecar)
        io.status(f"recorded {path}")
    try:
        entries = load_history(args.dir)
    except HistoryError as exc:
        io.status(f"bench-history: {exc}")
        return 2
    io.emit(
        render_history(
            entries,
            phases=(
                [p for p in args.phases.split(",") if p]
                if args.phases
                else None
            ),
            last=args.last,
            phase_threshold=args.phase_threshold,
            min_seconds=args.min_seconds,
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    io = args.io
    runs = {}
    for minutes in args.intervals:
        io.status(f"running 2C at {minutes}-minute interval ...")
        duration = max(3600.0, minutes * 60.0 * 6)
        result = run_combination(
            "2C",
            num_probes=args.probes,
            interval_s=minutes * 60.0,
            duration_s=duration,
            seed=args.seed,
        )
        runs[float(minutes)] = result.observations
    io.emit(render_interval_sweep(analyze_interval_sweep(runs, args.reference)))
    return 0


def _cmd_passive(args: argparse.Namespace) -> int:
    io = args.io
    if args.kind == "root":
        trace = generate_ditl_trace(num_recursives=args.recursives, seed=args.seed)
        target_count, label = 10, "Root, 10 of 13 letters"
    else:
        trace = generate_nl_trace(num_recursives=args.recursives, seed=args.seed)
        target_count, label = 4, ".nl, 4 of 8 NSes"
    io.emit(
        f"{trace.query_count} captured queries from "
        f"{trace.recursive_count()} recursives"
    )
    if args.out:
        save_trace(trace, args.out)
        io.status(f"wrote trace to {args.out}")
    result = analyze_rank_bands(
        trace.queries_by_recursive(),
        target_count=target_count,
        min_queries=args.min_queries,
    )
    io.emit()
    io.emit(render_rank_bands(result, label))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a zone file over real UDP (and TCP) sockets."""
    from .dns import (
        AuthoritativeServer,
        TcpAuthoritativeServer,
        UdpAuthoritativeServer,
        parse_zone_text,
    )

    io = args.io
    text = Path(args.zone).read_text()
    zone = parse_zone_text(text, args.origin)
    zone.validate()
    engine = AuthoritativeServer(args.server_id, [zone])
    udp = UdpAuthoritativeServer(engine, host=args.host, port=args.port)
    tcp = TcpAuthoritativeServer(engine, host=args.host, port=udp.address[1])
    with udp, tcp:
        host, port = udp.address
        io.emit(f"serving {zone.origin.to_text()} on {host}:{port} (udp+tcp)")
        io.status("Ctrl-C to stop")
        try:
            import time as _time

            while True:
                _time.sleep(0.5)
                if args.max_queries and engine.stats.queries >= args.max_queries:
                    break
        except KeyboardInterrupt:
            pass
    io.emit(f"served {engine.stats.queries} queries")
    return 0


def _cmd_scorecard(args: argparse.Namespace) -> int:
    """Regenerate the full paper-vs-measured scorecard."""
    from .analysis import Scorecard
    from .analysis.interval import analyze_interval_sweep
    from .analysis.rank_bands import analyze_rank_bands
    from .analysis.preference import table2_rows
    from .netsim.geo import Continent
    from .passive import generate_ditl_trace, generate_nl_trace

    io = args.io
    card = Scorecard()
    runs = {}
    probe_all = {}
    for combo_id, combo in COMBINATIONS.items():
        io.status(f"running {combo_id} ...")
        result = run_combination(combo_id, num_probes=args.probes, seed=args.seed)
        runs[combo_id] = result
        probe_all[combo_id] = analyze_probe_all(
            result.observations, set(combo.sites), combo_id=combo_id
        )
    card.record(
        "fig2_probed_all_min",
        min(result.probed_all_pct for result in probe_all.values()),
    )
    card.record(
        "fig2_2ns_median_queries",
        max(probe_all[c].queries_to_all.median for c in ("2A", "2B", "2C")),
    )
    card.record(
        "fig2_4ns_median_queries",
        max(probe_all[c].queries_to_all.median for c in ("4A", "4B")),
    )
    for combo_id in ("2A", "2B", "2C"):
        sites = set(COMBINATIONS[combo_id].sites)
        pref = analyze_preference(runs[combo_id].observations, sites, combo_id)
        card.record(f"fig4_{combo_id.lower()}_weak", pref.weak_pct)
        card.record(f"fig4_{combo_id.lower()}_strong", pref.strong_pct)
    rows = table2_rows(runs["2C"].observations, {"FRA", "SYD"})
    eu = next(row for row in rows if row.continent == Continent.EU)
    card.record("table2_2c_eu_fra_share", eu.share_pct_by_site["FRA"])
    card.record("table2_2c_eu_fra_rtt", eu.median_rtt_by_site["FRA"])
    card.record("table2_2c_eu_syd_rtt", eu.median_rtt_by_site["SYD"])

    io.status("running interval sweep ...")
    sweep_runs = {}
    for minutes in (2, 30):
        result = run_combination(
            "2C", num_probes=args.probes // 2, interval_s=minutes * 60.0,
            duration_s=3600.0 if minutes == 2 else minutes * 60.0 * 6,
            seed=args.seed,
        )
        sweep_runs[float(minutes)] = result.observations
    eu_series = dict(
        analyze_interval_sweep(sweep_runs, "FRA").series(Continent.EU)
    )
    card.record("fig6_eu_2min", eu_series[2.0])
    card.record("fig6_eu_30min_persists", eu_series[30.0])

    io.status("generating passive traces ...")
    root = analyze_rank_bands(
        generate_ditl_trace(
            num_recursives=args.recursives, seed=2
        ).queries_by_recursive(),
        target_count=10, min_queries=250,
    )
    card.record("fig7_root_one_letter", root.pct_querying_exactly(1))
    card.record("fig7_root_six_plus", root.pct_querying_at_least(6))
    card.record("fig7_root_all_ten", root.pct_querying_all())
    nl = analyze_rank_bands(
        generate_nl_trace(
            num_recursives=args.recursives, seed=3
        ).queries_by_recursive(),
        target_count=4, min_queries=250,
    )
    card.record("fig7_nl_all_four", nl.pct_querying_all())

    io.emit(card.render())
    misses = card.misses()
    io.emit(
        f"\n{len(card.measured) - len(misses)}/{len(card.measured)} "
        "claims within tolerance"
    )
    return 0 if not misses else 1


def _cmd_dig(args: argparse.Namespace) -> int:
    """Query a real DNS server (pairs with ``serve``)."""
    from .dns import RRClass, RRType, query_tcp, query_udp

    io = args.io
    rrtype = RRType.from_text(args.rrtype)
    rrclass = RRClass.from_text(args.rrclass)
    address = (args.server, args.port)
    if args.tcp:
        response = query_tcp(address, args.name, rrtype, rrclass, timeout=args.timeout)
    else:
        response = query_udp(address, args.name, rrtype, rrclass, timeout=args.timeout)
        if response.truncated:
            io.status(";; truncated — retrying over TCP")
            response = query_tcp(address, args.name, rrtype, rrclass, timeout=args.timeout)
    io.emit(response.to_text())
    return 0 if response.rcode == 0 else 1


def _cmd_plan(args: argparse.Namespace) -> int:
    clients = ProbeGenerator(rng=random.Random(args.seed)).generate(args.clients)
    planner = DeploymentPlanner(
        clients, selection=SelectionModel(latency_sensitive_share=args.latency_share)
    )
    designs = sidn_style_designs(
        anycast_sites=tuple(args.sites), home_site=args.home
    )
    rows = [
        [
            ev.name,
            str(ev.anycast_count),
            f"{ev.mean_expected_ms:.1f}",
            f"{ev.p90_expected_ms:.1f}",
            f"{ev.mean_worst_ms:.1f}",
        ]
        for ev in planner.rank(designs)
    ]
    args.io.emit(
        render_table(
            ["design", "anycast", "mean(ms)", "p90(ms)", "worst-NS(ms)"],
            rows,
            title=f"NS-set designs over {args.clients} clients",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dns",
        description="Reproduction toolkit for 'Recursives in the Wild' (IMC 2017)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write command output to FILE instead of stdout",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="silence progress notes (stderr)",
    )
    parser.add_argument(
        "--log-level", default="warning",
        choices=("debug", "info", "warning", "error"),
        help="stderr level for the repro.* loggers (default: warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("combos", help="list the Table 1 combinations").set_defaults(
        func=_cmd_combos
    )

    run_parser = sub.add_parser("run", help="run a testbed combination")
    run_parser.add_argument("--combo", default="2C", choices=sorted(COMBINATIONS))
    run_parser.add_argument("--probes", type=int, default=300)
    run_parser.add_argument("--interval", type=float, default=2.0, help="minutes")
    run_parser.add_argument("--duration", type=float, default=60.0, help="minutes")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--ipv6", action="store_true")
    run_parser.add_argument(
        "--workers", type=int, default=1,
        help="shard the probe population over N processes; merged output "
        "is identical for any N (default: 1, in-process)",
    )
    run_parser.add_argument(
        "--shards", type=int, default=0,
        help="shard count when it should differ from --workers "
        "(0 = one shard per worker); forces the sharded engine even "
        "with --workers 1",
    )
    run_parser.add_argument("--out", help="save observations as JSONL")
    run_parser.add_argument(
        "--events", metavar="FILE",
        help="stream a telemetry event log (JSONL) to FILE",
    )
    run_parser.add_argument(
        "--spill-events", metavar="DIR",
        help="with --workers/--shards: each worker spills its event "
        "records to DIR/shard-NNNN.events.jsonl instead of buffering "
        "them in memory; the merged log is byte-identical either way",
    )
    run_parser.add_argument(
        "--scenario", default=None, metavar="NAME|FILE",
        help="inject a fault timeline: a bundled scenario name "
        "(see 'faults list') or a scenario JSON file",
    )
    run_parser.add_argument(
        "--heartbeat-every", type=int, default=0, metavar="TICKS",
        help="emit a shard.heartbeat note every N measurement ticks "
        "for 'repro-dns top' (0 = off; never affects results)",
    )
    run_parser.add_argument(
        "--kernel", action="store_true",
        help="drive the campaign through the discrete-event kernel "
        "(ticks, deliveries, and retries as heap events)",
    )
    run_parser.add_argument(
        "--no-analyze", action="store_true",
        help="skip the post-run figure tables (for smoke campaigns too "
        "short or too large for the per-VP query thresholds)",
    )
    run_parser.set_defaults(func=_cmd_run)

    analyze_parser = sub.add_parser("analyze", help="analyze a saved run")
    analyze_parser.add_argument("--run", required=True, help="JSONL run file")
    analyze_parser.add_argument("--sites", nargs="+", required=True)
    analyze_parser.add_argument("--combo", default="?", help="label for the tables")
    analyze_parser.set_defaults(func=_cmd_analyze)

    metrics_parser = sub.add_parser(
        "metrics", help="run with telemetry and dump the metrics registry"
    )
    metrics_parser.add_argument("--combo", default="2C", choices=sorted(COMBINATIONS))
    metrics_parser.add_argument("--probes", type=int, default=100)
    metrics_parser.add_argument("--interval", type=float, default=2.0, help="minutes")
    metrics_parser.add_argument("--duration", type=float, default=30.0, help="minutes")
    metrics_parser.add_argument("--seed", type=int, default=0)
    metrics_parser.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="Prometheus text (default) or JSON sidecar",
    )
    metrics_parser.add_argument(
        "--events", metavar="FILE",
        help="also stream a telemetry event log (JSONL) to FILE",
    )
    metrics_parser.add_argument(
        "--profile", action="store_true",
        help="also print the simulator's wall-clock phase profile",
    )
    metrics_parser.set_defaults(func=_cmd_metrics)

    trace_parser = sub.add_parser(
        "trace", help="print query-lifecycle traces from a small telemetry run"
    )
    trace_parser.add_argument("--combo", default="2C", choices=sorted(COMBINATIONS))
    trace_parser.add_argument("--probes", type=int, default=5)
    trace_parser.add_argument("--ticks", type=int, default=1, help="measurement rounds")
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument("--count", type=int, default=1, help="traces to print")
    trace_parser.add_argument(
        "--all", dest="cache_misses_only", action="store_false",
        help="include cache hits (default: cache-busting misses only)",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    dashboard_parser = sub.add_parser(
        "dashboard",
        help="render the run scorecard from an event log (or a live run)",
    )
    dashboard_parser.add_argument(
        "log", nargs="?", default=None,
        help="a saved event log (JSONL); omit to run live",
    )
    dashboard_parser.add_argument("--top", type=int, default=5,
                                  help="slowest traces to show")
    dashboard_parser.add_argument("--combo", default="2C",
                                  choices=sorted(COMBINATIONS))
    dashboard_parser.add_argument("--probes", type=int, default=100)
    dashboard_parser.add_argument("--interval", type=float, default=2.0,
                                  help="minutes (live mode)")
    dashboard_parser.add_argument("--duration", type=float, default=30.0,
                                  help="minutes (live mode)")
    dashboard_parser.add_argument("--seed", type=int, default=0)
    dashboard_parser.add_argument(
        "--events", metavar="FILE",
        help="live mode: also stream the event log to FILE",
    )
    dashboard_parser.add_argument(
        "--follow", action="store_true",
        help="tail a growing event log and render once the run "
        "finalizes (requires a log path)",
    )
    dashboard_parser.add_argument(
        "--refresh", type=float, default=0.2, metavar="SEC",
        help="--follow: poll interval (default: 0.2s)",
    )
    dashboard_parser.add_argument(
        "--idle-timeout", type=float, default=30.0, metavar="SEC",
        help="--follow: give up after SEC without new events "
        "(default: 30)",
    )
    dashboard_parser.set_defaults(func=_cmd_dashboard)

    forensics_parser = sub.add_parser(
        "forensics",
        help="critical paths, latency attribution, and slow-query "
        "exemplars from an event log",
    )
    forensics_parser.add_argument("log", help="a saved event log (JSONL)")
    forensics_parser.add_argument(
        "selector", nargs="?", default=None,
        help="focus on matching traces: trace-<id>, probe-<id>, or a "
        "qname substring (default: the full report)",
    )
    forensics_parser.add_argument(
        "--top", type=int, default=3,
        help="slow-query exemplars to show (default: 3)",
    )
    forensics_parser.set_defaults(func=_cmd_forensics)

    slo_parser = sub.add_parser(
        "slo",
        help="evaluate SLOs over an event log and score burn alerts "
        "against the injected fault timeline",
    )
    slo_parser.add_argument("log", help="a saved event log (JSONL)")
    slo_parser.add_argument(
        "--spec", metavar="FILE",
        help="JSON list of SLO definitions (default: the built-in set)",
    )
    slo_parser.add_argument(
        "--window", type=float, default=120.0, metavar="SEC",
        help="rolling window width for the built-in SLOs "
        "(default: 120s; ignored with --spec)",
    )
    slo_parser.add_argument(
        "--slack", type=float, default=None, metavar="SEC",
        help="detection slack past fault end when scoring "
        "(default: one window)",
    )
    slo_parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when any SLO raised a burn alert",
    )
    slo_parser.set_defaults(func=_cmd_slo)

    top_parser = sub.add_parser(
        "top",
        help="live campaign monitor: QPS, p99, per-NS share, per-shard "
        "progress (or replay a saved log)",
    )
    top_parser.add_argument(
        "--from-log", metavar="FILE",
        help="replay a saved event log instead of running live",
    )
    top_parser.add_argument(
        "--follow", action="store_true",
        help="with --from-log: tail the file as it grows",
    )
    top_parser.add_argument(
        "--refresh", type=float, default=0.2, metavar="SEC",
        help="poll interval between frames (default: 0.2s)",
    )
    top_parser.add_argument(
        "--idle-timeout", type=float, default=30.0, metavar="SEC",
        help="give up after SEC without new events (default: 30)",
    )
    top_parser.add_argument(
        "--max-frames", type=int, default=0, metavar="N",
        help="stop after N rendered frames (0 = until the run ends)",
    )
    top_parser.add_argument("--combo", default="2C", choices=sorted(COMBINATIONS))
    top_parser.add_argument("--probes", type=int, default=100)
    top_parser.add_argument("--interval", type=float, default=2.0,
                            help="minutes (live mode)")
    top_parser.add_argument("--duration", type=float, default=30.0,
                            help="minutes (live mode)")
    top_parser.add_argument("--seed", type=int, default=0)
    top_parser.add_argument(
        "--scenario", default=None, metavar="NAME|FILE",
        help="live mode: inject a fault timeline",
    )
    top_parser.add_argument(
        "--events", metavar="FILE",
        help="live mode: keep the event log at FILE "
        "(default: a deleted scratch file)",
    )
    top_parser.add_argument(
        "--heartbeat-every", type=int, default=1, metavar="TICKS",
        help="live mode: heartbeat cadence in ticks (default: 1)",
    )
    top_parser.set_defaults(func=_cmd_top)

    bench_parser = sub.add_parser(
        "bench-diff",
        help="compare two bench-profile sidecars; exit 1 on regression",
    )
    bench_parser.add_argument("base", help="baseline sidecar JSON")
    bench_parser.add_argument("new", help="candidate sidecar JSON")
    bench_parser.add_argument("--phase-threshold", type=float, default=0.30,
                              help="relative slowdown a phase may show (0.30 = +30%%)")
    bench_parser.add_argument("--min-seconds", type=float, default=0.05,
                              help="absolute slowdown floor before a phase can fail")
    bench_parser.add_argument("--counter-threshold", type=float, default=0.001,
                              help="relative drift a deterministic counter may show")
    bench_parser.add_argument("--force", action="store_true",
                              help="compare even across sidecar schema versions")
    bench_parser.add_argument("--phases", metavar="PREFIXES",
                              help="comma-separated phase-name prefixes to gate "
                                   "(default: every phase)")
    bench_parser.set_defaults(func=_cmd_bench_diff)

    costs_parser = sub.add_parser(
        "costs",
        help="per-query cost ledger and subsystem overhead decomposition",
    )
    costs_parser.add_argument(
        "log", nargs="?", default=None,
        help="a saved event log (JSONL) holding a costs record; "
        "omit to run live",
    )
    costs_parser.add_argument("--combo", default="2C", choices=sorted(COMBINATIONS))
    costs_parser.add_argument("--probes", type=int, default=300)
    costs_parser.add_argument("--interval", type=float, default=2.0, help="minutes")
    costs_parser.add_argument("--duration", type=float, default=30.0, help="minutes")
    costs_parser.add_argument("--seed", type=int, default=0)
    costs_parser.add_argument(
        "--scenario", default=None, metavar="NAME|FILE",
        help="inject a fault timeline (see 'faults list')",
    )
    costs_parser.add_argument(
        "--workers", type=int, default=1,
        help="shard over N processes; the merged ledger is identical "
        "for any N at a fixed shard count",
    )
    costs_parser.add_argument(
        "--shards", type=int, default=0,
        help="shard count when it should differ from --workers "
        "(0 = one shard per worker)",
    )
    costs_parser.add_argument(
        "--profile-mode", choices=("trace", "sample", "off"), default="trace",
        help="subsystem profiler: 'trace' partitions the measure phase "
        "exactly, 'sample' has near-zero overhead and feeds --flamegraph "
        "(default: trace; serial runs only)",
    )
    costs_parser.add_argument(
        "--profile-alloc", action="store_true",
        help="also snapshot allocations per phase (tracemalloc) and "
        "account GC pauses",
    )
    costs_parser.add_argument(
        "--export", metavar="FILE",
        help="write the ledger as canonical JSON (byte-identical for "
        "equivalent runs; CI compares serial vs sharded with cmp)",
    )
    costs_parser.add_argument(
        "--flamegraph", metavar="FILE",
        help="write collapsed stacks (flamegraph.pl / speedscope input); "
        "needs --profile-mode sample",
    )
    costs_parser.add_argument(
        "--events", metavar="FILE",
        help="stream a telemetry event log (JSONL) carrying the costs "
        "record to FILE",
    )
    costs_parser.add_argument(
        "--kernel", action="store_true",
        help="cost the campaign on the discrete-event kernel instead "
        "of the synchronous per-query loop",
    )
    costs_parser.set_defaults(func=_cmd_costs)

    history_parser = sub.add_parser(
        "bench-history",
        help="bench trajectory: record sidecars, render the trend",
    )
    history_parser.add_argument(
        "--dir", default="benchmarks/history",
        help="history directory (default: benchmarks/history)",
    )
    history_parser.add_argument(
        "--record", action="store_true",
        help="append the --sidecar profile as the next history entry",
    )
    history_parser.add_argument(
        "--sidecar", default="benchmarks/.bench_profile.json",
        help="sidecar to record (default: benchmarks/.bench_profile.json)",
    )
    history_parser.add_argument(
        "--force", action="store_true",
        help="record even across sidecar schema versions",
    )
    history_parser.add_argument(
        "--phases", metavar="PREFIXES",
        help="comma-separated phase-name prefixes to show",
    )
    history_parser.add_argument(
        "--last", type=int, default=8,
        help="entries shown in the trend table (default: 8)",
    )
    history_parser.add_argument(
        "--phase-threshold", type=float, default=0.30,
        help="relative slowdown for regression attribution (0.30 = +30%%)",
    )
    history_parser.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="absolute slowdown floor for regression attribution",
    )
    history_parser.set_defaults(func=_cmd_bench_history)

    sweep_parser = sub.add_parser("sweep", help="Figure 6 interval sweep (2C)")
    sweep_parser.add_argument("--probes", type=int, default=150)
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument(
        "--intervals", nargs="+", type=int, default=list(FIGURE6_INTERVALS_MIN)
    )
    sweep_parser.add_argument("--reference", default="FRA")
    sweep_parser.set_defaults(func=_cmd_sweep)

    passive_parser = sub.add_parser("passive", help="synthesize a production trace")
    passive_parser.add_argument("--kind", choices=("root", "nl"), default="root")
    passive_parser.add_argument("--recursives", type=int, default=250)
    passive_parser.add_argument("--min-queries", type=int, default=250)
    passive_parser.add_argument("--seed", type=int, default=2)
    passive_parser.add_argument("--out", help="save trace as JSONL")
    passive_parser.set_defaults(func=_cmd_passive)

    scorecard_parser = sub.add_parser(
        "scorecard", help="regenerate the paper-vs-measured scorecard"
    )
    scorecard_parser.add_argument("--probes", type=int, default=300)
    scorecard_parser.add_argument("--recursives", type=int, default=250)
    scorecard_parser.add_argument("--seed", type=int, default=20170412)
    scorecard_parser.set_defaults(func=_cmd_scorecard)

    dig_parser = sub.add_parser("dig", help="query a real DNS server")
    dig_parser.add_argument("server", help="server address")
    dig_parser.add_argument("name", help="query name")
    dig_parser.add_argument("rrtype", nargs="?", default="A")
    dig_parser.add_argument("-p", "--port", type=int, default=53)
    dig_parser.add_argument("--rrclass", default="IN")
    dig_parser.add_argument("--tcp", action="store_true")
    dig_parser.add_argument("--timeout", type=float, default=3.0)
    dig_parser.set_defaults(func=_cmd_dig)

    serve_parser = sub.add_parser("serve", help="serve a zone file over UDP/TCP")
    serve_parser.add_argument("--zone", required=True, help="master-file path")
    serve_parser.add_argument("--origin", required=True, help="zone origin")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=5353)
    serve_parser.add_argument("--server-id", default="repro-authoritative")
    serve_parser.add_argument(
        "--max-queries", type=int, default=0,
        help="stop after N queries (0 = run until interrupted)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    plan_parser = sub.add_parser("plan", help="evaluate NS-set designs (§7)")
    plan_parser.add_argument("--clients", type=int, default=500)
    plan_parser.add_argument(
        "--sites", nargs="+", default=["FRA", "IAD", "SYD", "GRU"],
        choices=sorted(DATACENTERS),
    )
    plan_parser.add_argument("--home", default="FRA", choices=sorted(DATACENTERS))
    plan_parser.add_argument("--latency-share", type=float, default=0.5)
    plan_parser.add_argument("--seed", type=int, default=0)
    plan_parser.set_defaults(func=_cmd_plan)

    faults_parser = sub.add_parser(
        "faults", help="deterministic fault scenarios (list, run)"
    )
    faults_sub = faults_parser.add_subparsers(dest="faults_command", required=True)

    faults_list = faults_sub.add_parser(
        "list", help="list the bundled fault scenarios"
    )
    faults_list.add_argument(
        "--duration", type=float, default=0.0, metavar="MIN",
        help="also expand each scenario's event timeline for a "
        "campaign of MIN minutes",
    )
    faults_list.set_defaults(func=_cmd_faults_list)

    faults_run = faults_sub.add_parser(
        "run", help="run a combination under a fault scenario"
    )
    faults_run.add_argument(
        "--scenario", default="ns-outage", metavar="NAME|FILE",
        help="bundled scenario name or scenario JSON file "
        "(default: ns-outage)",
    )
    faults_run.add_argument("--combo", default="2C", choices=sorted(COMBINATIONS))
    faults_run.add_argument("--probes", type=int, default=300)
    faults_run.add_argument("--interval", type=float, default=2.0, help="minutes")
    faults_run.add_argument("--duration", type=float, default=60.0, help="minutes")
    faults_run.add_argument("--seed", type=int, default=0)
    faults_run.add_argument(
        "--workers", type=int, default=1,
        help="shard the probe population over N processes; merged "
        "output is identical for any N (default: 1, in-process)",
    )
    faults_run.add_argument(
        "--shards", type=int, default=0,
        help="shard count when it should differ from --workers "
        "(0 = one shard per worker); forces the sharded engine even "
        "with --workers 1",
    )
    faults_run.add_argument("--out", help="save observations as JSONL")
    faults_run.add_argument(
        "--events", metavar="FILE",
        help="stream a telemetry event log (JSONL) to FILE",
    )
    faults_run.add_argument(
        "--spill-events", metavar="DIR",
        help="with --workers/--shards: each worker spills its event "
        "records to DIR/shard-NNNN.events.jsonl instead of buffering "
        "them in memory; the merged log is byte-identical either way",
    )
    faults_run.add_argument(
        "--export", metavar="FILE",
        help="save the resolved scenario as a scenario JSON file",
    )
    faults_run.add_argument(
        "--kernel", action="store_true",
        help="drive the campaign through the discrete-event kernel",
    )
    faults_run.set_defaults(func=_cmd_faults_run)

    attack_parser = sub.add_parser(
        "attack", help="adversarial workloads: NXNSAttack, water torture"
    )
    attack_sub = attack_parser.add_subparsers(dest="attack_command", required=True)

    attack_list = attack_sub.add_parser(
        "list", help="list the bundled attack profiles"
    )
    attack_list.set_defaults(func=_cmd_attack_list)

    attack_run = attack_sub.add_parser(
        "run", help="run a combination under an adversarial workload"
    )
    attack_run.add_argument(
        "--attack", default="nxns", metavar="NAME|FILE",
        help="bundled attack name or attack-profile JSON file "
        "(default: nxns)",
    )
    attack_run.add_argument("--combo", default="2C", choices=sorted(COMBINATIONS))
    attack_run.add_argument("--probes", type=int, default=300)
    attack_run.add_argument("--interval", type=float, default=2.0, help="minutes")
    attack_run.add_argument("--duration", type=float, default=60.0, help="minutes")
    attack_run.add_argument("--seed", type=int, default=0)
    attack_run.add_argument(
        "--bot-share", type=float, metavar="FRAC",
        help="override the profile's botnet share of the VPs",
    )
    attack_run.add_argument(
        "--fan-out", type=int, metavar="N",
        help="override the delegation bombs' glueless NS fan-out",
    )
    attack_run.add_argument(
        "--max-fetch", type=int, metavar="N",
        help="cap glueless NS fetches per client query (MaxFetch)",
    )
    attack_run.add_argument(
        "--max-fetch-per-delegation", type=int, metavar="N",
        help="cap fetches chased out of any single referral",
    )
    attack_run.add_argument(
        "--rrl-qps", type=int, metavar="QPS",
        help="rate-limit error responses at the authoritatives (RRL)",
    )
    attack_run.add_argument(
        "--workers", type=int, default=1,
        help="shard the probe population over N processes; merged "
        "output is identical for any N (default: 1, in-process)",
    )
    attack_run.add_argument(
        "--shards", type=int, default=0,
        help="shard count when it should differ from --workers "
        "(0 = one shard per worker); forces the sharded engine even "
        "with --workers 1",
    )
    attack_run.add_argument("--out", help="save observations as JSONL")
    attack_run.add_argument(
        "--events", metavar="FILE",
        help="stream a telemetry event log (JSONL) to FILE",
    )
    attack_run.add_argument(
        "--spill-events", metavar="DIR",
        help="with --workers/--shards: each worker spills its event "
        "records to DIR/shard-NNNN.events.jsonl instead of buffering "
        "them in memory; the merged log is byte-identical either way",
    )
    attack_run.add_argument(
        "--export-costs", metavar="FILE",
        help="write the canonical cost-ledger JSON (amplification, "
        "RRL slip/drop counts) to FILE",
    )
    attack_run.add_argument(
        "--export", metavar="FILE",
        help="save the resolved attack profile as a JSON file",
    )
    attack_run.add_argument(
        "--kernel", action="store_true",
        help="drive the campaign through the discrete-event kernel",
    )
    attack_run.set_defaults(func=_cmd_attack_run)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.log_level)
    args.io = CliWriter(output=args.output, quiet=args.quiet)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed the pipe (| head, a pager): exit quietly
        # like a unix filter.  Point stdout at devnull first so the
        # interpreter's shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, the shell convention
    finally:
        args.io.close()


if __name__ == "__main__":
    raise SystemExit(main())
