"""Domain names.

A :class:`Name` is an immutable, case-preserving but case-insensitively
comparable sequence of labels, plus conversions between presentation
format (``www.example.nl.``), wire format (length-prefixed labels), and
the compression-pointer scheme of RFC 1035 §4.1.4.

Names are *the* hot object of the wire codec: every decoded message,
zone lookup, and cache key allocates and hashes them.  Two disciplines
keep that cheap:

* a validation-free flyweight constructor (:meth:`Name._from_validated`)
  for labels that are already known-good — decoded wire labels, slices
  of an existing name — with lazily cached hash and uncompressed wire
  bytes;
* a small intern table (:meth:`Name.intern`) so long-lived hot names
  (zone origins, stub-zone keys, well-known names) share one instance
  and therefore one cached hash/wire encoding.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .errors import (
    BadPointerError,
    CompressionLoopError,
    NameError_,
    TruncatedMessageError,
)

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255  # total wire length including the root label

_ESCAPED = {ord("."), ord("\\")}

#: interned names: exact label tuple -> canonical instance.  Bounded so
#: adversarial or cache-busting callers cannot grow it without limit.
_INTERN: dict[tuple[bytes, ...], "Name"] = {}
_INTERN_MAX = 4096


def _escape_label(label: bytes) -> str:
    """Render one label in presentation format, escaping special bytes."""
    out: list[str] = []
    for byte in label:
        if byte in _ESCAPED:
            out.append("\\" + chr(byte))
        elif 0x21 <= byte <= 0x7E:
            out.append(chr(byte))
        else:
            out.append("\\%03d" % byte)
    return "".join(out)


def _parse_labels(text: str) -> list[bytes]:
    """Split presentation-format text into raw label bytes, handling escapes."""
    labels: list[bytes] = []
    current = bytearray()
    i = 0
    n = len(text)
    while i < n:
        char = text[i]
        if char == "\\":
            if i + 1 >= n:
                raise NameError_(f"dangling escape in {text!r}")
            nxt = text[i + 1]
            if nxt.isdigit():
                if i + 3 >= n or not text[i + 1 : i + 4].isdigit():
                    raise NameError_(f"bad decimal escape in {text!r}")
                value = int(text[i + 1 : i + 4])
                if value > 255:
                    raise NameError_(f"escape value {value} > 255 in {text!r}")
                current.append(value)
                i += 4
            else:
                current.append(ord(nxt))
                i += 2
        elif char == ".":
            if not current:
                raise NameError_(f"empty label in {text!r}")
            labels.append(bytes(current))
            current = bytearray()
            i += 1
        else:
            current.append(ord(char))
            i += 1
    if current:
        labels.append(bytes(current))
    return labels


class Name:
    """An immutable domain name.

    Names are always stored fully qualified; the root name has zero
    labels.  Comparison and hashing are case-insensitive per RFC 1035
    §2.3.3, while the original spelling is preserved for display.
    """

    __slots__ = ("_labels", "_folded", "_hash", "_wire", "_wlen")

    def __init__(self, labels: Iterable[bytes] = ()):
        labels = tuple(labels)
        total = 1
        for label in labels:
            if not label:
                raise NameError_("empty label")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(
                    f"label {label!r} exceeds {MAX_LABEL_LENGTH} bytes"
                )
            total += len(label) + 1
        if total > MAX_NAME_LENGTH:
            raise NameError_("name exceeds 255 wire bytes")
        self._labels = labels
        self._wlen = total
        self._hash = None
        self._wire = None

    def __getattr__(self, attr):
        # ``_folded`` is computed on first use: many decoded names (e.g.
        # response question names) are never compared or hashed, so the
        # per-label fold would be pure waste.  With __slots__, reading
        # the unset slot lands here exactly once per instance.
        if attr == "_folded":
            folded = tuple(label.lower() for label in self._labels)
            self._folded = folded
            return folded
        if attr == "_wlen":
            labels = self._labels
            length = sum(map(len, labels)) + len(labels) + 1
            self._wlen = length
            return length
        raise AttributeError(attr)

    # -- constructors ---------------------------------------------------

    @classmethod
    def _from_validated(
        cls,
        labels: tuple[bytes, ...],
        folded: tuple[bytes, ...] | None = None,
    ) -> "Name":
        """Flyweight constructor for labels that are already known-good.

        Invariants the caller must guarantee: every label is non-empty,
        at most :data:`MAX_LABEL_LENGTH` bytes, and the total wire
        length fits :data:`MAX_NAME_LENGTH`.  Slices of an existing
        name and freshly decoded wire labels (whose length byte bounds
        them at 63) satisfy this by construction.
        """
        self = object.__new__(cls)
        self._labels = labels
        if folded is not None:
            self._folded = folded
        self._hash = None
        self._wire = None
        return self

    def intern(self) -> "Name":
        """Return the canonical shared instance for this exact spelling.

        Interned instances accumulate cached hash/wire state once and
        keep it for the process lifetime — use for long-lived hot names
        (zone origins, stub-zone keys), not per-query unique labels.
        """
        cached = _INTERN.get(self._labels)
        if cached is not None:
            return cached
        if len(_INTERN) < _INTERN_MAX:
            _INTERN[self._labels] = self
        return self

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse presentation format; a trailing dot is accepted and implied."""
        if text in (".", ""):
            return ROOT
        if text.endswith("."):
            text = text[:-1]
        labels = tuple(_parse_labels(text))
        interned = _INTERN.get(labels)
        if interned is not None:
            return interned
        return cls(labels)

    @classmethod
    def from_wire(
        cls,
        wire: bytes,
        offset: int,
        _memo: dict[int, tuple["Name", int]] | None = None,
    ) -> tuple["Name", int]:
        """Decode a (possibly compressed) name starting at ``offset``.

        Returns the name and the offset just past its encoding in the
        original stream (compression targets do not advance the cursor).

        ``_memo`` is a per-message decode cache (offset -> (name, end)):
        when a compression pointer targets an offset decoded earlier in
        the same message, the already-built name is reused instead of
        re-walking the label chain.
        """
        if _memo is not None:
            hit = _memo.get(offset)
            if hit is not None:
                return hit
        labels: list[bytes] = []
        cursor = offset
        end: int | None = None  # offset after the name in the original stream
        seen_pointers: set[int] | None = None  # allocated on first pointer
        total = 1  # running wire length: root byte + (len+1) per label
        wire_len = len(wire)
        while True:
            if cursor >= wire_len:
                raise TruncatedMessageError("name runs past end of message")
            length = wire[cursor]
            if length == 0:
                if end is None:
                    end = cursor + 1
                if labels:
                    name = cls._from_validated(tuple(labels))
                    name._wlen = total
                else:
                    name = ROOT
                if _memo is not None:
                    _memo[offset] = (name, end)
                return name, end
            if length & 0xC0 == 0xC0:
                if cursor + 1 >= wire_len:
                    raise TruncatedMessageError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | wire[cursor + 1]
                if target >= cursor:
                    raise BadPointerError(
                        f"forward compression pointer {target} at {cursor}"
                    )
                if seen_pointers is None:
                    seen_pointers = {target}
                elif target in seen_pointers:
                    raise CompressionLoopError(
                        f"compression pointer loop at {target}"
                    )
                else:
                    seen_pointers.add(target)
                if end is None:
                    end = cursor + 2
                if _memo is not None:
                    hit = _memo.get(target)
                    if hit is not None:
                        tail = hit[0]
                        if total + tail.wire_length() - 1 > MAX_NAME_LENGTH:
                            raise NameError_(
                                "decoded name exceeds 255 wire bytes"
                            )
                        if labels:
                            name = cls._from_validated(
                                tuple(labels) + tail._labels
                            )
                            name._wlen = total + tail._wlen - 1
                        else:
                            name = tail
                        _memo[offset] = (name, end)
                        return name, end
                cursor = target
            elif length & 0xC0:
                raise BadPointerError(f"reserved label type 0x{length:02x}")
            else:
                if cursor + 1 + length > wire_len:
                    raise TruncatedMessageError("label runs past end of message")
                total += 1 + length
                if total > MAX_NAME_LENGTH:
                    raise NameError_("decoded name exceeds 255 wire bytes")
                labels.append(wire[cursor + 1 : cursor + 1 + length])
                cursor += 1 + length

    # -- conversions ----------------------------------------------------

    def to_text(self) -> str:
        if not self._labels:
            return "."
        return ".".join(_escape_label(label) for label in self._labels) + "."

    def to_wire(
        self,
        compress: dict["Name", int] | None = None,
        offset: int = 0,
    ) -> bytes:
        """Encode to wire format.

        When ``compress`` is given it maps already-emitted names to their
        message offsets; suffixes found there are replaced by pointers,
        and newly emitted suffixes at pointer-reachable offsets are added.
        """
        if compress is None:
            wire = self._wire
            if wire is None:
                out = bytearray()
                for label in self._labels:
                    out.append(len(label))
                    out += label
                out.append(0)
                wire = bytes(out)
                self._wire = wire
            return wire
        out = bytearray()
        self._compress_into(out, compress, offset)
        return bytes(out)

    def wire_into(
        self,
        out: bytearray,
        compress: dict["Name", int] | None = None,
    ) -> None:
        """Append the wire encoding to ``out`` (a whole-message buffer).

        The message offset of this name is ``len(out)`` at call time,
        so no separate ``offset`` argument is needed — this is the
        allocation-light path :meth:`Message._encode` uses.
        """
        if compress is None:
            out += self.to_wire()
            return
        self._compress_into(out, compress, len(out))

    def _compress_into(
        self, out: bytearray, compress: dict["Name", int], base: int
    ) -> None:
        """Emit into ``out`` with compression; the name begins at message
        offset ``base`` (suffix offsets are registered relative to it)."""
        labels = self._labels
        folded = self._folded
        start = len(out)
        for i in range(len(labels)):
            suffix = (
                self
                if i == 0
                else Name._from_validated(labels[i:], folded[i:])
            )
            target = compress.get(suffix)
            if target is not None and target < 0x4000:
                out.append(0xC0 | (target >> 8))
                out.append(target & 0xFF)
                return
            position = base + (len(out) - start)
            if position < 0x4000:
                compress[suffix] = position
            label = labels[i]
            out.append(len(label))
            out += label
        out.append(0)

    # -- structure ------------------------------------------------------

    @property
    def labels(self) -> tuple[bytes, ...]:
        return self._labels

    def parent(self) -> "Name":
        """The name with the leftmost label removed; root's parent is an error."""
        if not self._labels:
            raise NameError_("the root name has no parent")
        return Name._from_validated(self._labels[1:], self._folded[1:])

    def child(self, label: str | bytes) -> "Name":
        """Prepend one label."""
        if isinstance(label, str):
            parsed = _parse_labels(label)
            if len(parsed) != 1:
                raise NameError_(f"{label!r} is not a single label")
            label = parsed[0]
        if not label:
            raise NameError_("empty label")
        if len(label) > MAX_LABEL_LENGTH:
            raise NameError_(
                f"label {label!r} exceeds {MAX_LABEL_LENGTH} bytes"
            )
        total = self.wire_length() + len(label) + 1
        if total > MAX_NAME_LENGTH:
            raise NameError_("name exceeds 255 wire bytes")
        name = Name._from_validated(
            (label,) + self._labels, (label.lower(),) + self._folded
        )
        name._wlen = total
        return name

    def concatenate(self, suffix: "Name") -> "Name":
        if self.wire_length() + suffix.wire_length() - 1 > MAX_NAME_LENGTH:
            raise NameError_("name exceeds 255 wire bytes")
        return Name._from_validated(
            self._labels + suffix._labels, self._folded + suffix._folded
        )

    def is_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` equals ``other`` or lies below it."""
        if len(other._folded) > len(self._folded):
            return False
        if not other._folded:
            return True
        return self._folded[-len(other._folded) :] == other._folded

    def relativize(self, origin: "Name") -> tuple[bytes, ...]:
        """Labels of ``self`` below ``origin``; raises if not a subdomain."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        count = len(self._labels) - len(origin.labels)
        return self._labels[:count]

    def is_root(self) -> bool:
        return not self._labels

    def wire_length(self) -> int:
        """Uncompressed wire length in bytes (cached on first use)."""
        return self._wlen

    # -- dunder ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._labels)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Name):
            return NotImplemented
        return self._folded == other._folded

    def __lt__(self, other: "Name") -> bool:
        # Canonical DNS ordering: compare label sequences right-to-left.
        return self._folded[::-1] < other._folded[::-1]

    def __le__(self, other: "Name") -> bool:
        return self == other or self < other

    def __gt__(self, other: "Name") -> bool:
        return not self <= other

    def __ge__(self, other: "Name") -> bool:
        return not self < other

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(self._folded)
            self._hash = value
        return value

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"


ROOT = Name(())
