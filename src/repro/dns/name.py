"""Domain names.

A :class:`Name` is an immutable, case-preserving but case-insensitively
comparable sequence of labels, plus conversions between presentation
format (``www.example.nl.``), wire format (length-prefixed labels), and
the compression-pointer scheme of RFC 1035 §4.1.4.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .errors import (
    BadPointerError,
    CompressionLoopError,
    NameError_,
    TruncatedMessageError,
)

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255  # total wire length including the root label

_ESCAPED = {ord("."), ord("\\")}


def _escape_label(label: bytes) -> str:
    """Render one label in presentation format, escaping special bytes."""
    out: list[str] = []
    for byte in label:
        if byte in _ESCAPED:
            out.append("\\" + chr(byte))
        elif 0x21 <= byte <= 0x7E:
            out.append(chr(byte))
        else:
            out.append("\\%03d" % byte)
    return "".join(out)


def _parse_labels(text: str) -> list[bytes]:
    """Split presentation-format text into raw label bytes, handling escapes."""
    labels: list[bytes] = []
    current = bytearray()
    i = 0
    n = len(text)
    while i < n:
        char = text[i]
        if char == "\\":
            if i + 1 >= n:
                raise NameError_(f"dangling escape in {text!r}")
            nxt = text[i + 1]
            if nxt.isdigit():
                if i + 3 >= n or not text[i + 1 : i + 4].isdigit():
                    raise NameError_(f"bad decimal escape in {text!r}")
                value = int(text[i + 1 : i + 4])
                if value > 255:
                    raise NameError_(f"escape value {value} > 255 in {text!r}")
                current.append(value)
                i += 4
            else:
                current.append(ord(nxt))
                i += 2
        elif char == ".":
            if not current:
                raise NameError_(f"empty label in {text!r}")
            labels.append(bytes(current))
            current = bytearray()
            i += 1
        else:
            current.append(ord(char))
            i += 1
    if current:
        labels.append(bytes(current))
    return labels


class Name:
    """An immutable domain name.

    Names are always stored fully qualified; the root name has zero
    labels.  Comparison and hashing are case-insensitive per RFC 1035
    §2.3.3, while the original spelling is preserved for display.
    """

    __slots__ = ("_labels", "_folded")

    def __init__(self, labels: Iterable[bytes] = ()):
        labels = tuple(labels)
        for label in labels:
            if not label:
                raise NameError_("empty label")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(
                    f"label {label!r} exceeds {MAX_LABEL_LENGTH} bytes"
                )
        if sum(len(label) + 1 for label in labels) + 1 > MAX_NAME_LENGTH:
            raise NameError_("name exceeds 255 wire bytes")
        self._labels = labels
        self._folded = tuple(label.lower() for label in labels)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse presentation format; a trailing dot is accepted and implied."""
        if text in (".", ""):
            return ROOT
        if text.endswith("."):
            text = text[:-1]
        return cls(_parse_labels(text))

    @classmethod
    def from_wire(cls, wire: bytes, offset: int) -> tuple["Name", int]:
        """Decode a (possibly compressed) name starting at ``offset``.

        Returns the name and the offset just past its encoding in the
        original stream (compression targets do not advance the cursor).
        """
        labels: list[bytes] = []
        cursor = offset
        end: int | None = None  # offset after the name in the original stream
        seen_pointers: set[int] = set()
        while True:
            if cursor >= len(wire):
                raise TruncatedMessageError("name runs past end of message")
            length = wire[cursor]
            if length == 0:
                if end is None:
                    end = cursor + 1
                return cls(labels), end
            if length & 0xC0 == 0xC0:
                if cursor + 1 >= len(wire):
                    raise TruncatedMessageError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | wire[cursor + 1]
                if target >= cursor:
                    raise BadPointerError(
                        f"forward compression pointer {target} at {cursor}"
                    )
                if target in seen_pointers:
                    raise CompressionLoopError(
                        f"compression pointer loop at {target}"
                    )
                seen_pointers.add(target)
                if end is None:
                    end = cursor + 2
                cursor = target
            elif length & 0xC0:
                raise BadPointerError(f"reserved label type 0x{length:02x}")
            else:
                if cursor + 1 + length > len(wire):
                    raise TruncatedMessageError("label runs past end of message")
                labels.append(wire[cursor + 1 : cursor + 1 + length])
                cursor += 1 + length
                if sum(len(lab) + 1 for lab in labels) + 1 > MAX_NAME_LENGTH:
                    raise NameError_("decoded name exceeds 255 wire bytes")

    # -- conversions ----------------------------------------------------

    def to_text(self) -> str:
        if not self._labels:
            return "."
        return ".".join(_escape_label(label) for label in self._labels) + "."

    def to_wire(
        self,
        compress: dict["Name", int] | None = None,
        offset: int = 0,
    ) -> bytes:
        """Encode to wire format.

        When ``compress`` is given it maps already-emitted names to their
        message offsets; suffixes found there are replaced by pointers,
        and newly emitted suffixes at pointer-reachable offsets are added.
        """
        out = bytearray()
        name = self
        while name._labels:
            if compress is not None:
                target = compress.get(name)
                if target is not None and target < 0x4000:
                    out += bytes([0xC0 | (target >> 8), target & 0xFF])
                    return bytes(out)
                if offset + len(out) < 0x4000:
                    compress[name] = offset + len(out)
            label = name._labels[0]
            out.append(len(label))
            out += label
            name = name.parent()
        out.append(0)
        return bytes(out)

    # -- structure ------------------------------------------------------

    @property
    def labels(self) -> tuple[bytes, ...]:
        return self._labels

    def parent(self) -> "Name":
        """The name with the leftmost label removed; root's parent is an error."""
        if not self._labels:
            raise NameError_("the root name has no parent")
        return Name(self._labels[1:])

    def child(self, label: str | bytes) -> "Name":
        """Prepend one label."""
        if isinstance(label, str):
            parsed = _parse_labels(label)
            if len(parsed) != 1:
                raise NameError_(f"{label!r} is not a single label")
            label = parsed[0]
        return Name((label,) + self._labels)

    def concatenate(self, suffix: "Name") -> "Name":
        return Name(self._labels + suffix.labels)

    def is_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` equals ``other`` or lies below it."""
        if len(other._folded) > len(self._folded):
            return False
        if not other._folded:
            return True
        return self._folded[-len(other._folded) :] == other._folded

    def relativize(self, origin: "Name") -> tuple[bytes, ...]:
        """Labels of ``self`` below ``origin``; raises if not a subdomain."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        count = len(self._labels) - len(origin.labels)
        return self._labels[:count]

    def is_root(self) -> bool:
        return not self._labels

    def wire_length(self) -> int:
        """Uncompressed wire length in bytes."""
        return sum(len(label) + 1 for label in self._labels) + 1

    # -- dunder ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._folded == other._folded

    def __lt__(self, other: "Name") -> bool:
        # Canonical DNS ordering: compare label sequences right-to-left.
        return self._folded[::-1] < other._folded[::-1]

    def __le__(self, other: "Name") -> bool:
        return self == other or self < other

    def __gt__(self, other: "Name") -> bool:
        return not self <= other

    def __ge__(self, other: "Name") -> bool:
        return not self < other

    def __hash__(self) -> int:
        return hash(self._folded)

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"


ROOT = Name(())
