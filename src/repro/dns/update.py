"""Dynamic updates (RFC 2136) and the zone-poisoning angle.

The paper's related work (Korczyński et al. [13]) found second-level
domains whose authoritatives accept dynamic updates from anyone — "zone
poisoning".  This module implements the UPDATE opcode for the
authoritative engine with an explicit ACL, so both the legitimate use
and the misconfiguration are testable.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from .message import Message
from .name import Name
from .records import ResourceRecord
from .server import AuthoritativeServer
from .types import Opcode, Rcode, RRClass, RRType
from .zone import Zone


@dataclass
class UpdatePolicy:
    """Who may update which zones.

    ``allow_from`` lists source networks; an empty list denies everyone
    (the safe default).  The open-resolver misconfiguration studied in
    [13] is ``allow_any=True``.
    """

    allow_from: list[str] = field(default_factory=list)
    allow_any: bool = False

    def permits(self, client: str) -> bool:
        if self.allow_any:
            return True
        address = client.rsplit(":", 1)[0] if client.count(":") == 1 else client
        try:
            source = ipaddress.ip_address(address)
        except ValueError:
            return False
        for network in self.allow_from:
            if source in ipaddress.ip_network(network):
                return True
        return False


class UpdateHandler:
    """Applies RFC 2136 update sections to an engine's zones."""

    def __init__(self, engine: AuthoritativeServer, policy: UpdatePolicy | None = None):
        self.engine = engine
        self.policy = policy if policy is not None else UpdatePolicy()
        self.applied = 0
        self.refused = 0

    def handle(self, update: Message, client: str = "") -> Message:
        """Process one UPDATE message; returns the response."""
        response = update.make_response()
        if update.opcode != Opcode.UPDATE or len(update.questions) != 1:
            response.rcode = Rcode.FORMERR
            return response
        if not self.policy.permits(client):
            self.refused += 1
            response.rcode = Rcode.REFUSED
            return response
        zone_name = update.questions[0].name
        zone = self.engine.find_zone(zone_name)
        if zone is None or zone.origin != zone_name:
            response.rcode = Rcode.NOTAUTH
            return response
        # RFC 2136 carries updates in the authority section.
        try:
            for record in update.authorities:
                self._apply(zone, record)
        except ValueError:
            response.rcode = Rcode.FORMERR
            return response
        self.applied += 1
        return response

    def _apply(self, zone: Zone, record: ResourceRecord) -> None:
        """One update RR: class IN adds; ANY deletes an RRset; NONE
        deletes one RR.

        All mutations go through the zone's own methods so its version
        counter advances and cached response templates are invalidated.
        """
        if record.rrclass == RRClass.IN:
            if not record.name.is_subdomain_of(zone.origin):
                raise ValueError("out of zone")
            zone.add_record(record)
        elif record.rrclass == RRClass.ANY:
            zone.delete_rrset(record.name, record.rrtype)
        elif record.rrclass == RRClass.NONE:
            zone.remove_rdata(record.name, record.rrtype, record.rdata)
        else:
            raise ValueError(f"bad update class {record.rrclass}")


def make_update(
    zone: Name | str,
    additions: list[ResourceRecord] = (),
    deletions: list[tuple[Name, RRType]] = (),
    msg_id: int = 1,
) -> Message:
    """Build an RFC 2136 UPDATE message."""
    from .message import Question

    if isinstance(zone, str):
        zone = Name.from_text(zone)
    update = Message(msg_id=msg_id, opcode=Opcode.UPDATE)
    update.questions.append(Question(zone, RRType.SOA, RRClass.IN))
    for record in additions:
        update.authorities.append(record)
    for name, rrtype in deletions:
        from .rdata import GenericRdata

        update.authorities.append(
            ResourceRecord(name, rrtype, RRClass.ANY, 0, GenericRdata(int(rrtype), b""))
        )
    return update


def attach_update_handling(
    engine: AuthoritativeServer, policy: UpdatePolicy
) -> UpdateHandler:
    """Route UPDATE-opcode messages on the engine through a handler.

    Wraps ``engine.handle_query`` so the wire paths (UDP/TCP) pick up
    update support transparently.
    """
    handler = UpdateHandler(engine, policy)
    original = engine.handle_query

    def dispatch(query: Message, client: str = "", now: float = 0.0) -> Message:
        if query.opcode == Opcode.UPDATE:
            return handler.handle(query, client=client)
        return original(query, client=client, now=now)

    engine.handle_query = dispatch  # type: ignore[method-assign]
    return handler
