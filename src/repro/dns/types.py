"""DNS protocol constants: RR types, classes, opcodes, and rcodes."""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """Resource record TYPE values (RFC 1035 §3.2.2 and successors)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    OPT = 41
    DS = 43
    RRSIG = 46
    NSEC = 47
    DNSKEY = 48
    CAA = 257
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRType":
        try:
            return cls[text.upper()]
        except KeyError:
            if text.upper().startswith("TYPE"):
                return cls(int(text[4:]))
            raise ValueError(f"unknown RR type {text!r}") from None

    def to_text(self) -> str:
        return self.name


class RRClass(enum.IntEnum):
    """Resource record CLASS values."""

    IN = 1
    CH = 3
    HS = 4
    NONE = 254
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRClass":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown RR class {text!r}") from None

    def to_text(self) -> str:
        return self.name


class Opcode(enum.IntEnum):
    """Message OPCODE values."""

    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """Response RCODE values."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5
    YXDOMAIN = 6
    YXRRSET = 7
    NXRRSET = 8
    NOTAUTH = 9
    NOTZONE = 10

    def to_text(self) -> str:
        return self.name


# Code→member lookup tables for the wire decoders: enum.__call__ costs
# a surprising amount per record, and decode touches every record.
RRTYPE_BY_CODE = {int(member): member for member in RRType}
RRCLASS_BY_CODE = {int(member): member for member in RRClass}
OPCODE_BY_CODE = {int(member): member for member in Opcode}
RCODE_BY_CODE = {int(member): member for member in Rcode}

# Header flag bit masks (16-bit flags word, RFC 1035 §4.1.1).
FLAG_QR = 0x8000
FLAG_AA = 0x0400
FLAG_TC = 0x0200
FLAG_RD = 0x0100
FLAG_RA = 0x0080
FLAG_AD = 0x0020
FLAG_CD = 0x0010

MAX_UDP_PAYLOAD = 512
MAX_EDNS_PAYLOAD = 4096
