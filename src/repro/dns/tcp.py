"""TCP transport for the authoritative engine (RFC 1035 §4.2.2).

DNS-over-TCP frames each message with a 2-byte length prefix and is the
fallback clients use when a UDP response comes back truncated.  The
paper notes UDP carries >97 % of production DNS; TCP is here for
substrate completeness and for the truncation-fallback path.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading

from ..telemetry.clock import DEFAULT_CLOCK, Clock
from .message import Message
from .name import Name
from .server import AuthoritativeServer
from .types import RRClass, RRType
from .udp import query_udp


def read_tcp_message(sock: socket.socket) -> bytes | None:
    """Read one length-prefixed DNS message; None on a clean close."""
    prefix = _read_exact(sock, 2)
    if prefix is None:
        return None
    (length,) = struct.unpack("!H", prefix)
    return _read_exact(sock, length)


def write_tcp_message(sock: socket.socket, wire: bytes) -> None:
    sock.sendall(struct.pack("!H", len(wire)) + wire)


def _read_exact(sock: socket.socket, count: int) -> bytes | None:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            return None
        chunks += chunk
    return bytes(chunks)


class TcpAuthoritativeServer:
    """Serve an :class:`AuthoritativeServer` over TCP.

    Handles multiple queries per connection (pipelining) and runs in a
    background thread; use as a context manager.  Query-log timestamps
    come from the injectable ``clock`` (monotonic by default, shared
    with the UDP transport), not ``time.time()``.
    """

    def __init__(
        self,
        engine: AuthoritativeServer,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Clock = DEFAULT_CLOCK,
    ):
        self.engine = engine
        self.clock = clock
        outer = self

        class Handler(socketserver.BaseRequestHandler):
            def handle(self):
                self.request.settimeout(5.0)
                while True:
                    try:
                        wire = read_tcp_message(self.request)
                    except (socket.timeout, OSError):
                        return
                    if wire is None:
                        return
                    client = "%s:%s" % self.client_address
                    response = outer.engine.handle_wire_tcp(
                        wire, client=client, now=outer.clock.now()
                    )
                    if response is None:
                        return
                    try:
                        write_tcp_message(self.request, response)
                    except OSError:
                        return

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((host, port), Handler)
        self.address: tuple[str, int] = self._server.server_address
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "TcpAuthoritativeServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def query_tcp(
    address: tuple[str, int],
    qname: Name | str,
    qtype: RRType,
    rrclass: RRClass = RRClass.IN,
    timeout: float = 2.0,
    msg_id: int = 1,
) -> Message:
    """Send one TCP query and read the response."""
    query = Message.make_query(qname, qtype, rrclass, msg_id=msg_id)
    with socket.create_connection(address, timeout=timeout) as sock:
        write_tcp_message(sock, query.to_wire())
        wire = read_tcp_message(sock)
        if wire is None:
            raise ConnectionError(f"no response from {address}")
        return Message.from_wire(wire)


def query_with_tcp_fallback(
    udp_address: tuple[str, int],
    tcp_address: tuple[str, int],
    qname: Name | str,
    qtype: RRType,
    rrclass: RRClass = RRClass.IN,
    timeout: float = 2.0,
    msg_id: int = 1,
) -> tuple[Message, bool]:
    """UDP first; on a truncated (TC) response, retry over TCP.

    Returns (response, used_tcp).
    """
    response = query_udp(udp_address, qname, qtype, rrclass, timeout, msg_id)
    if not response.truncated:
        return response, False
    return (
        query_tcp(tcp_address, qname, qtype, rrclass, timeout, msg_id),
        True,
    )
