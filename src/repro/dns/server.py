"""Authoritative name-server engine (the NSD role in the paper).

:class:`AuthoritativeServer` is transport-agnostic: it maps a request
:class:`Message` to a response :class:`Message`.  Transports (simulated
network, real UDP) feed it bytes or messages.  It also keeps a query log,
which plays the role of the paper's server-side packet captures.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..telemetry import NULL_TELEMETRY
from .message import Message, Question
from .name import Name
from .rdata import TXT
from .records import RRset
from .types import MAX_UDP_PAYLOAD, Opcode, Rcode, RRClass, RRType
from .zone import LookupStatus, Zone

log = logging.getLogger("repro.dns.server")

CHAOS_ID_SERVER = Name.from_text("id.server.")
CHAOS_HOSTNAME_BIND = Name.from_text("hostname.bind.")

#: default query-log capacity — high enough that no tracked experiment
#: drops entries, low enough to bound memory on week-long runs.
DEFAULT_QUERY_LOG_MAX = 1_000_000


@dataclass(frozen=True)
class QueryLogEntry:
    """One received query, as a server-side capture would record it."""

    timestamp: float
    client: str
    qname: Name
    qtype: RRType
    rcode: Rcode


@dataclass
class ServerStats:
    """Aggregate counters, mirroring an NSD statistics dump."""

    queries: int = 0
    responses: int = 0
    nxdomain: int = 0
    refused: int = 0
    formerr: int = 0
    notimp: int = 0
    chaos: int = 0


class BoundedQueryLog:
    """A ring buffer of :class:`QueryLogEntry` with a drop counter.

    Long campaigns used to grow the query log without bound; the log is
    now capped (oldest entries evicted first) and counts what it sheds
    in :attr:`dropped`.  It behaves like a read-only list for existing
    consumers (iteration, indexing, ``len``, equality).
    """

    def __init__(self, maxlen: int | None = DEFAULT_QUERY_LOG_MAX):
        if maxlen is not None and maxlen <= 0:
            raise ValueError(f"query log capacity must be positive, got {maxlen}")
        self.maxlen = maxlen
        self._entries: deque[QueryLogEntry] = deque(maxlen=maxlen)
        self.dropped = 0

    def append(self, entry: QueryLogEntry) -> bool:
        """Record one entry; returns True when an old entry was evicted."""
        evicting = (
            self.maxlen is not None and len(self._entries) == self.maxlen
        )
        if evicting:
            if self.dropped == 0:
                log.warning(
                    "query log full (maxlen=%d): evicting oldest entries",
                    self.maxlen,
                )
            self.dropped += 1
        self._entries.append(entry)
        return evicting

    def clear(self) -> None:
        self._entries.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[QueryLogEntry]:
        return iter(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._entries)[index]
        return self._entries[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, BoundedQueryLog):
            return list(self) == list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"BoundedQueryLog(len={len(self._entries)}, "
            f"maxlen={self.maxlen}, dropped={self.dropped})"
        )


class AuthoritativeServer:
    """Serves one or more zones authoritatively.

    Parameters
    ----------
    server_id:
        Identifier returned for CHAOS ``id.server.`` queries; the paper's
        experiment identifies sites this way *and* via per-site TXT data.
    zones:
        Initial zones to load.
    log_queries:
        When true, every query is appended to :attr:`query_log`.
    query_log_max:
        Ring-buffer capacity of the query log (``None`` = unbounded);
        evictions are counted in ``query_log.dropped`` and, when
        telemetry is live, in ``authoritative_query_log_dropped_total``.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; when enabled the
        engine exports per-server query/response counters and joins
        query-lifecycle traces with ``auth.query`` spans.
    """

    def __init__(
        self,
        server_id: str,
        zones: Iterable[Zone] = (),
        log_queries: bool = True,
        rate_limiter=None,
        query_log_max: int | None = DEFAULT_QUERY_LOG_MAX,
        telemetry=None,
    ):
        self.server_id = server_id
        self._zones: dict[Name, Zone] = {}
        self.stats = ServerStats()
        self.query_log = BoundedQueryLog(maxlen=query_log_max)
        self.log_queries = log_queries
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: optional :class:`repro.dns.rrl.ResponseRateLimiter`
        self.rate_limiter = rate_limiter
        for zone in zones:
            self.add_zone(zone)

    # -- zone management ---------------------------------------------------

    def add_zone(self, zone: Zone) -> None:
        self._zones[zone.origin] = zone

    def remove_zone(self, origin: Name) -> None:
        self._zones.pop(origin, None)

    def find_zone(self, qname: Name) -> Zone | None:
        """Longest-suffix zone match for a query name."""
        best: Zone | None = None
        for origin, zone in self._zones.items():
            if qname.is_subdomain_of(origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best

    # -- query processing ----------------------------------------------------

    #: the largest EDNS payload this server will honor (NSD's default)
    max_edns_payload = 4096

    def handle_wire(
        self, wire: bytes, client: str = "", now: float = 0.0
    ) -> bytes | None:
        """Decode, process, and encode; ``None`` for undecodable garbage.

        Responses are capped at 512 bytes for plain-DNS clients and at
        min(advertised, 4096) for EDNS clients; larger answers are
        truncated with the TC bit set (the client then retries over TCP).
        """
        try:
            query = Message.from_wire(wire)
        except Exception:
            self.stats.formerr += 1
            return None
        response = self.handle_query(query, client=client, now=now)
        if self.rate_limiter is not None and response.questions:
            from .rrl import RrlAction

            question = response.questions[0]
            response_key = f"{question.name}/{int(question.rrtype)}/{int(response.rcode)}"
            action = self.rate_limiter.check(client, response_key, now)
            if action is RrlAction.DROP:
                return None
            if action is RrlAction.SLIP:
                slip = query.make_response()
                slip.truncated = True
                return slip.to_wire()
        if query.edns_payload is not None:
            max_size = min(query.edns_payload, self.max_edns_payload)
            response.use_edns(self.max_edns_payload)
            if query.nsid is not None:
                # NSID (RFC 5001): identify this instance — the modern
                # alternative to CHAOS id.server for catchment mapping.
                response.edns_options.append(
                    (Message.EDNS_NSID, self.server_id.encode())
                )
        else:
            max_size = MAX_UDP_PAYLOAD
        return response.to_wire(max_size=max_size)

    def handle_wire_tcp(
        self, wire: bytes, client: str = "", now: float = 0.0
    ) -> bytes | None:
        """TCP variant of :meth:`handle_wire`: no size cap, no TC bit.

        TCP also carries zone transfers: AXFR questions are dispatched
        to :mod:`repro.dns.axfr`.
        """
        try:
            query = Message.from_wire(wire)
        except Exception:
            self.stats.formerr += 1
            return None
        if (
            len(query.questions) == 1
            and int(query.questions[0].rrtype) == 252  # AXFR
        ):
            from .axfr import handle_axfr

            self.stats.queries += 1
            self.stats.responses += 1
            return handle_axfr(self, query).to_wire()
        response = self.handle_query(query, client=client, now=now)
        if query.edns_payload is not None:
            response.use_edns(self.max_edns_payload)
        return response.to_wire()

    def handle_query(
        self, query: Message, client: str = "", now: float = 0.0
    ) -> Message:
        """Produce the authoritative response for one query message.

        With telemetry enabled this opens an ``auth.query`` span — when
        the query arrived through an instrumented :class:`SimNetwork`
        the span nests under that exchange's ``net.round_trip``.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._handle_query(query, client, now)
        qname = query.questions[0].name.to_text() if query.questions else ""
        span = telemetry.tracer.start_span(
            "auth.query", at=now, server=self.server_id, client=client, qname=qname
        )
        try:
            response = self._handle_query(query, client, now)
            span.set(rcode=getattr(response.rcode, "name", str(response.rcode)))
            return response
        finally:
            telemetry.tracer.finish_span(span, at=now)

    def _handle_query(
        self, query: Message, client: str = "", now: float = 0.0
    ) -> Message:
        self.stats.queries += 1
        response = query.make_response()

        if query.opcode != Opcode.QUERY:
            response.rcode = Rcode.NOTIMP
            self.stats.notimp += 1
            return self._finish(response, client, now)
        if len(query.questions) != 1:
            response.rcode = Rcode.FORMERR
            self.stats.formerr += 1
            return self._finish(response, client, now)

        question = query.questions[0]
        if question.rrclass == RRClass.CH:
            self._answer_chaos(question, response)
            return self._finish(response, client, now)
        if question.rrclass != RRClass.IN:
            response.rcode = Rcode.REFUSED
            self.stats.refused += 1
            return self._finish(response, client, now)

        zone = self.find_zone(question.name)
        if zone is None:
            response.rcode = Rcode.REFUSED
            self.stats.refused += 1
            return self._finish(response, client, now)

        result = zone.lookup(question.name, question.rrtype)
        response.authoritative = result.status != LookupStatus.DELEGATION
        if result.status == LookupStatus.NXDOMAIN:
            response.rcode = Rcode.NXDOMAIN
            self.stats.nxdomain += 1
        self._add_rrsets(response.answers, result.answers)
        self._add_rrsets(response.authorities, result.authority)
        self._add_rrsets(response.additionals, result.additional)
        return self._finish(response, client, now)

    def _answer_chaos(self, question: Question, response: Message) -> None:
        """CHAOS TXT id.server. / hostname.bind. identify this instance."""
        self.stats.chaos += 1
        if question.rrtype == RRType.TXT and question.name in (
            CHAOS_ID_SERVER,
            CHAOS_HOSTNAME_BIND,
        ):
            rrset = RRset(question.name, RRType.TXT, RRClass.CH, 0)
            rrset.add(TXT.from_value(self.server_id))
            self._add_rrsets(response.answers, [rrset])
            response.authoritative = True
        else:
            response.rcode = Rcode.REFUSED

    @staticmethod
    def _add_rrsets(section: list, rrsets: Iterable[RRset]) -> None:
        for rrset in rrsets:
            section.extend(rrset.records())

    def _finish(self, response: Message, client: str, now: float) -> Message:
        self.stats.responses += 1
        dropped = False
        if self.log_queries and response.questions:
            question = response.questions[0]
            dropped = self.query_log.append(
                QueryLogEntry(
                    timestamp=now,
                    client=client,
                    qname=question.name,
                    qtype=question.rrtype
                    if isinstance(question.rrtype, RRType)
                    else RRType.ANY,
                    rcode=response.rcode,
                )
            )
        telemetry = self.telemetry
        if telemetry.enabled:
            registry = telemetry.registry
            registry.counter(
                "authoritative_queries_total",
                "queries received, by authoritative instance",
                ("server",),
            ).labels(server=self.server_id).inc()
            registry.counter(
                "authoritative_responses_total",
                "responses sent, by authoritative instance and rcode",
                ("server", "rcode"),
            ).labels(
                server=self.server_id,
                rcode=getattr(response.rcode, "name", str(response.rcode)),
            ).inc()
            if dropped:
                registry.counter(
                    "authoritative_query_log_dropped_total",
                    "query-log entries evicted by the ring buffer",
                    ("server",),
                ).labels(server=self.server_id).inc()
        return response

    def clear_log(self) -> None:
        self.query_log.clear()
