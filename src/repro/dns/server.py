"""Authoritative name-server engine (the NSD role in the paper).

:class:`AuthoritativeServer` is transport-agnostic: it maps a request
:class:`Message` to a response :class:`Message`.  Transports (simulated
network, real UDP) feed it bytes or messages.  It also keeps a query log,
which plays the role of the paper's server-side packet captures.
"""

from __future__ import annotations

import logging
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..telemetry import NULL_TELEMETRY
from .message import HEADER_STRUCT, QUESTION_TAIL_STRUCT, Message, Question
from .name import Name
from .rdata import TXT
from .records import _RR_HEADER_STRUCT, RRset
from .types import (
    FLAG_QR,
    FLAG_RD,
    MAX_UDP_PAYLOAD,
    Opcode,
    Rcode,
    RRClass,
    RRType,
)
from .zone import LookupStatus, Zone

log = logging.getLogger("repro.dns.server")

CHAOS_ID_SERVER = Name.from_text("id.server.")
CHAOS_HOSTNAME_BIND = Name.from_text("hostname.bind.")

_MSG_ID_STRUCT = struct.Struct("!H")


@dataclass(frozen=True)
class _ResponseTemplate:
    """A cached, rendered response skeleton for one (suffix, qtype, …) key.

    Everything after the question name is qname-independent (proven at
    build time by rendering the same answer for a canary label of a
    *different length* and comparing tails: any compression pointer into
    the variable part of the question would shift and fail the check).
    Rendering a hit is: msg-id + fixed header tail + the query's own
    qname wire + fixed question tail + fixed tail.
    """

    zone: Zone
    zone_version: int
    origin: Name
    header_tail: bytes  # response bytes 2..12 (flags + section counts)
    question_tail: bytes  # qtype + qclass, 4 bytes
    tail: bytes  # everything after the question section
    rcode: Rcode
    log_rrtype: RRType

#: default query-log capacity — high enough that no tracked experiment
#: drops entries, low enough to bound memory on week-long runs.
DEFAULT_QUERY_LOG_MAX = 1_000_000


@dataclass(frozen=True)
class QueryLogEntry:
    """One received query, as a server-side capture would record it."""

    timestamp: float
    client: str
    qname: Name
    qtype: RRType
    rcode: Rcode


@dataclass
class ServerStats:
    """Aggregate counters, mirroring an NSD statistics dump."""

    queries: int = 0
    responses: int = 0
    nxdomain: int = 0
    refused: int = 0
    formerr: int = 0
    notimp: int = 0
    chaos: int = 0


class BoundedQueryLog:
    """A ring buffer of :class:`QueryLogEntry` with a drop counter.

    Long campaigns used to grow the query log without bound; the log is
    now capped (oldest entries evicted first) and counts what it sheds
    in :attr:`dropped`.  It behaves like a read-only list for existing
    consumers (iteration, indexing, ``len``, equality).
    """

    def __init__(self, maxlen: int | None = DEFAULT_QUERY_LOG_MAX):
        if maxlen is not None and maxlen <= 0:
            raise ValueError(f"query log capacity must be positive, got {maxlen}")
        self.maxlen = maxlen
        self._entries: deque[QueryLogEntry] = deque(maxlen=maxlen)
        self.dropped = 0

    def append(self, entry: QueryLogEntry) -> bool:
        """Record one entry; returns True when an old entry was evicted."""
        evicting = (
            self.maxlen is not None and len(self._entries) == self.maxlen
        )
        if evicting:
            if self.dropped == 0:
                log.warning(
                    "query log full (maxlen=%d): evicting oldest entries",
                    self.maxlen,
                )
            self.dropped += 1
        self._entries.append(entry)
        return evicting

    def clear(self) -> None:
        self._entries.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[QueryLogEntry]:
        return iter(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._entries)[index]
        return self._entries[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, BoundedQueryLog):
            return list(self) == list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"BoundedQueryLog(len={len(self._entries)}, "
            f"maxlen={self.maxlen}, dropped={self.dropped})"
        )


class AuthoritativeServer:
    """Serves one or more zones authoritatively.

    Parameters
    ----------
    server_id:
        Identifier returned for CHAOS ``id.server.`` queries; the paper's
        experiment identifies sites this way *and* via per-site TXT data.
    zones:
        Initial zones to load.
    log_queries:
        When true, every query is appended to :attr:`query_log`.
    query_log_max:
        Ring-buffer capacity of the query log (``None`` = unbounded);
        evictions are counted in ``query_log.dropped`` and, when
        telemetry is live, in ``authoritative_query_log_dropped_total``.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; when enabled the
        engine exports per-server query/response counters and joins
        query-lifecycle traces with ``auth.query`` spans.
    """

    def __init__(
        self,
        server_id: str,
        zones: Iterable[Zone] = (),
        log_queries: bool = True,
        rate_limiter=None,
        query_log_max: int | None = DEFAULT_QUERY_LOG_MAX,
        telemetry=None,
    ):
        self.server_id = server_id
        self._zones: dict[Name, Zone] = {}
        self.stats = ServerStats()
        self.query_log = BoundedQueryLog(maxlen=query_log_max)
        self.log_queries = log_queries
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: optional :class:`repro.dns.rrl.ResponseRateLimiter`
        self.rate_limiter = rate_limiter
        #: response-template cache; see :class:`_ResponseTemplate`
        self._templates: dict[tuple, _ResponseTemplate] = {}
        #: question-suffix wire bytes -> validated suffix Name, plus the
        #: distinct byte lengths to probe; feeds the no-decode question
        #: parse in :meth:`_parse_fast_query`
        self._suffixes: dict[bytes, Name] = {}
        self._suffix_lens: tuple[int, ...] = ()
        for zone in zones:
            self.add_zone(zone)

    #: template-cache entries before a wholesale reset; the working set
    #: is bounded by zones x qtypes in practice, this only guards abuse.
    _TEMPLATE_MAX = 512

    # -- zone management ---------------------------------------------------

    def add_zone(self, zone: Zone) -> None:
        self._zones[zone.origin] = zone
        self._templates.clear()

    def remove_zone(self, origin: Name) -> None:
        self._zones.pop(origin, None)
        self._templates.clear()

    def find_zone(self, qname: Name) -> Zone | None:
        """Longest-suffix zone match for a query name.

        Walks from the qname toward the root, one dict probe per level,
        instead of scanning every loaded zone.
        """
        zones = self._zones
        if not zones:
            return None
        name = qname
        while True:
            zone = zones.get(name)
            if zone is not None:
                return zone
            if not name.labels:
                return None
            name = name.parent()

    # -- query processing ----------------------------------------------------

    #: the largest EDNS payload this server will honor (NSD's default)
    max_edns_payload = 4096

    def handle_wire(
        self, wire: bytes, client: str = "", now: float = 0.0
    ) -> bytes | None:
        """Decode, process, and encode; ``None`` for undecodable garbage.

        Responses are capped at 512 bytes for plain-DNS clients and at
        min(advertised, 4096) for EDNS clients; larger answers are
        truncated with the TC bit set (the client then retries over TCP).

        When no rate limiter, no telemetry, and no per-instance query
        dispatch are active, a template fast path may answer without
        decoding the query into a :class:`Message` at all; its output is
        byte-identical to the slow path (see :class:`_ResponseTemplate`).
        """
        # Cost ledger (deterministic counters; not a telemetry pillar
        # for `enabled` purposes, so the template fast path below stays
        # live while it counts).
        costs = self.telemetry.costs
        costs_on = costs.enabled
        fast = None
        if (
            self.rate_limiter is None
            and not self.telemetry.enabled
            and "handle_query" not in self.__dict__
        ):
            fast = self._parse_fast_query(wire)
            if fast is not None:
                rendered = self._render_from_template(fast, client, now)
                if rendered is not None:
                    if costs_on:
                        costs.count("template_hit")
                    return rendered
                if costs_on:
                    costs.count("template_miss")
        try:
            query = Message.from_wire(wire)
        except Exception:
            self.stats.formerr += 1
            return None
        if costs_on:
            costs.count("decode")
        response = self.handle_query(query, client=client, now=now)
        if self.rate_limiter is not None and response.questions:
            from .rrl import RrlAction

            question = response.questions[0]
            if response.rcode == Rcode.NOERROR:
                response_key = (
                    f"{question.name}/{int(question.rrtype)}/{int(response.rcode)}"
                )
            else:
                # BIND-style: error responses bucket per *zone*, not per
                # qname — otherwise a random-subdomain water torture gets
                # a fresh bucket per query and RRL never engages.
                zone = self.find_zone(question.name)
                scope = zone.origin if zone is not None else question.name
                response_key = f"{scope}/-/{int(response.rcode)}"
            if costs_on:
                costs.count("rrl_check")
            action = self.rate_limiter.check(client, response_key, now)
            if action is RrlAction.DROP:
                if costs_on:
                    costs.count("rrl_drop")
                return None
            if action is RrlAction.SLIP:
                if costs_on:
                    costs.count("rrl_slip")
                    costs.count("encode")
                slip = query.make_response()
                slip.truncated = True
                return slip.to_wire()
        if query.edns_payload is not None:
            max_size = min(query.edns_payload, self.max_edns_payload)
            response.use_edns(self.max_edns_payload)
            if query.nsid is not None:
                # NSID (RFC 5001): identify this instance — the modern
                # alternative to CHAOS id.server for catchment mapping.
                response.edns_options.append(
                    (Message.EDNS_NSID, self.server_id.encode())
                )
        else:
            max_size = MAX_UDP_PAYLOAD
        wire_out = response.to_wire(max_size=max_size)
        if costs_on:
            costs.count("encode")
        if fast is not None:
            self._maybe_build_template(fast, wire_out)
        return wire_out

    def handle_wire_tcp(
        self, wire: bytes, client: str = "", now: float = 0.0
    ) -> bytes | None:
        """TCP variant of :meth:`handle_wire`: no size cap, no TC bit.

        TCP also carries zone transfers: AXFR questions are dispatched
        to :mod:`repro.dns.axfr`.
        """
        try:
            query = Message.from_wire(wire)
        except Exception:
            self.stats.formerr += 1
            return None
        if (
            len(query.questions) == 1
            and int(query.questions[0].rrtype) == 252  # AXFR
        ):
            from .axfr import handle_axfr

            self.stats.queries += 1
            self.stats.responses += 1
            return handle_axfr(self, query).to_wire()
        response = self.handle_query(query, client=client, now=now)
        if query.edns_payload is not None:
            response.use_edns(self.max_edns_payload)
        return response.to_wire()

    def handle_query(
        self, query: Message, client: str = "", now: float = 0.0
    ) -> Message:
        """Produce the authoritative response for one query message.

        With telemetry enabled this opens an ``auth.query`` span — when
        the query arrived through an instrumented :class:`SimNetwork`
        the span nests under that exchange's ``net.round_trip``.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._handle_query(query, client, now)
        qname = query.questions[0].name.to_text() if query.questions else ""
        span = telemetry.tracer.start_span(
            "auth.query", at=now, server=self.server_id, client=client, qname=qname
        )
        try:
            response = self._handle_query(query, client, now)
            span.set(rcode=getattr(response.rcode, "name", str(response.rcode)))
            return response
        finally:
            telemetry.tracer.finish_span(span, at=now)

    def _handle_query(
        self, query: Message, client: str = "", now: float = 0.0
    ) -> Message:
        self.stats.queries += 1
        response = self._answer(query)
        # Counter bookkeeping mirrors the branch _answer took; keeping it
        # out of _answer lets the template builder render canary
        # responses without perturbing the stats.
        if query.opcode != Opcode.QUERY:
            self.stats.notimp += 1
        elif len(query.questions) != 1:
            self.stats.formerr += 1
        elif query.questions[0].rrclass == RRClass.CH:
            self.stats.chaos += 1
        elif response.rcode == Rcode.REFUSED:
            self.stats.refused += 1
        elif response.rcode == Rcode.NXDOMAIN:
            self.stats.nxdomain += 1
        return self._finish(response, client, now)

    def _answer(self, query: Message) -> Message:
        """Build the response message for one query, with no side effects."""
        response = query.make_response()

        if query.opcode != Opcode.QUERY:
            response.rcode = Rcode.NOTIMP
            return response
        if len(query.questions) != 1:
            response.rcode = Rcode.FORMERR
            return response

        question = query.questions[0]
        if question.rrclass == RRClass.CH:
            self._answer_chaos(question, response)
            return response
        if question.rrclass != RRClass.IN:
            response.rcode = Rcode.REFUSED
            return response

        zone = self.find_zone(question.name)
        if zone is None:
            response.rcode = Rcode.REFUSED
            return response

        result = zone.lookup(question.name, question.rrtype)
        response.authoritative = result.status != LookupStatus.DELEGATION
        if result.status == LookupStatus.NXDOMAIN:
            response.rcode = Rcode.NXDOMAIN
        self._add_rrsets(response.answers, result.answers)
        self._add_rrsets(response.authorities, result.authority)
        self._add_rrsets(response.additionals, result.additional)
        return response

    def _answer_chaos(self, question: Question, response: Message) -> None:
        """CHAOS TXT id.server. / hostname.bind. identify this instance."""
        if question.rrtype == RRType.TXT and question.name in (
            CHAOS_ID_SERVER,
            CHAOS_HOSTNAME_BIND,
        ):
            rrset = RRset(question.name, RRType.TXT, RRClass.CH, 0)
            rrset.add(TXT.from_value(self.server_id))
            self._add_rrsets(response.answers, [rrset])
            response.authoritative = True
        else:
            response.rcode = Rcode.REFUSED

    @staticmethod
    def _add_rrsets(section: list, rrsets: Iterable[RRset]) -> None:
        for rrset in rrsets:
            section.extend(rrset.records())

    def _finish(self, response: Message, client: str, now: float) -> Message:
        self.stats.responses += 1
        dropped = False
        if self.log_queries and response.questions:
            question = response.questions[0]
            dropped = self.query_log.append(
                QueryLogEntry(
                    timestamp=now,
                    client=client,
                    qname=question.name,
                    qtype=question.rrtype
                    if isinstance(question.rrtype, RRType)
                    else RRType.ANY,
                    rcode=response.rcode,
                )
            )
        telemetry = self.telemetry
        if telemetry.enabled:
            registry = telemetry.registry
            registry.counter(
                "authoritative_queries_total",
                "queries received, by authoritative instance",
                ("server",),
            ).labels(server=self.server_id).inc()
            registry.counter(
                "authoritative_responses_total",
                "responses sent, by authoritative instance and rcode",
                ("server", "rcode"),
            ).labels(
                server=self.server_id,
                rcode=getattr(response.rcode, "name", str(response.rcode)),
            ).inc()
            if dropped:
                registry.counter(
                    "authoritative_query_log_dropped_total",
                    "query-log entries evicted by the ring buffer",
                    ("server",),
                ).labels(server=self.server_id).inc()
        return response

    # -- response-template fast path ---------------------------------------

    def _parse_fast_query(
        self, wire: bytes
    ) -> tuple[int, bool, Name, int, int, int | None, bool, Name | None] | None:
        """Parse a plain single-question QUERY without building a Message.

        Returns ``(msg_id, rd, qname, qtype, qclass, edns_payload,
        wants_nsid, suffix)``, or ``None`` for anything the template
        path does not cover (the caller then falls back to the full
        decoder, so a ``None`` here is never a behavior change, only a
        slower answer).  ``suffix`` is the qname minus its first label
        (``None`` for single-label or compressed names).

        The question name itself avoids the generic decoder on repeat
        traffic: once a suffix's wire bytes have been validated, any
        question matching ``<one label> + <those exact bytes>`` is
        rebuilt as ``suffix.child(label)``.  The byte comparison is
        exact and every length byte in a stored suffix is < 64, so a
        compression pointer (first byte >= 0xC0) can never hide inside
        a match — the rebuilt name is forced equal to what
        :meth:`Name.from_wire` would return.
        """
        if len(wire) < 17:  # header + shortest possible question
            return None
        try:
            msg_id, flags, qdcount, ancount, nscount, arcount = (
                HEADER_STRUCT.unpack_from(wire)
            )
            if qdcount != 1 or ancount or nscount or arcount > 1:
                return None
            if flags & FLAG_QR or (flags >> 11) & 0xF:  # responses, non-QUERY
                return None
            qname = suffix = None
            first_len = wire[12]
            if 0 < first_len < 64:
                label_end = 13 + first_len
                for known_len in self._suffix_lens:
                    candidate = wire[label_end : label_end + known_len]
                    suffix = self._suffixes.get(candidate)
                    if suffix is not None:
                        qname = suffix.child(wire[13:label_end])
                        qname._wire = wire[12 : label_end + known_len]
                        cursor = label_end + known_len
                        break
            if qname is None:
                qname, cursor = Name.from_wire(wire, HEADER_STRUCT.size)
                if cursor - HEADER_STRUCT.size == qname._wlen:
                    # Uncompressed: the bytes just read are the name's
                    # wire form; seed the cache the render path reuses.
                    qname._wire = wire[HEADER_STRUCT.size : cursor]
                    if len(qname) >= 2:
                        suffix = qname.parent()
                        if len(self._suffixes) < 64:  # abuse guard
                            suffix_wire = qname._wire[1 + first_len :]
                            self._suffixes[suffix_wire] = suffix
                            if len(suffix_wire) not in self._suffix_lens:
                                self._suffix_lens = self._suffix_lens + (
                                    len(suffix_wire),
                                )
                elif len(qname) >= 2:
                    suffix = qname.parent()
            if cursor + 4 > len(wire):
                return None
            qtype, qclass = QUESTION_TAIL_STRUCT.unpack_from(wire, cursor)
            cursor += 4
            edns_payload = None
            wants_nsid = False
            if arcount:
                # The one additional must be a root-owned OPT; anything
                # else (TSIG, a compressed owner, ...) goes slow-path.
                if wire[cursor] != 0 or cursor + 11 > len(wire):
                    return None
                type_code, payload, _ttl, rdlength = (
                    _RR_HEADER_STRUCT.unpack_from(wire, cursor + 1)
                )
                if type_code != int(RRType.OPT):
                    return None
                cursor += 11
                if cursor + rdlength > len(wire):
                    return None
                position = 0
                while position + 4 <= rdlength:
                    code, length = QUESTION_TAIL_STRUCT.unpack_from(
                        wire, cursor + position
                    )
                    position += 4 + length
                    if code == Message.EDNS_NSID:
                        wants_nsid = True
                if position != rdlength:  # malformed option list
                    return None
                cursor += rdlength
                edns_payload = payload
            if cursor != len(wire):  # trailing bytes: let the decoder judge
                return None
        except Exception:
            return None
        return (
            msg_id, bool(flags & FLAG_RD), qname, qtype, qclass,
            edns_payload, wants_nsid, suffix,
        )

    @staticmethod
    def _template_key(fast) -> tuple | None:
        _msg_id, rd, _qname, qtype, qclass, edns_payload, wants_nsid, suffix = fast
        # Only IN-class names with at least one label under a cachable
        # suffix qualify; everything else stays on the slow path.
        if qclass != int(RRClass.IN) or suffix is None:
            return None
        # The suffix Name hashes on its cached folded form, so the key
        # stays case-insensitive without rebuilding a folded tuple.
        return (suffix, qtype, rd, edns_payload is not None, wants_nsid)

    def _render_from_template(
        self, fast, client: str, now: float
    ) -> bytes | None:
        """Answer from a cached template, or ``None`` on any miss/doubt."""
        key = self._template_key(fast)
        if key is None:
            return None
        entry = self._templates.get(key)
        if entry is None:
            return None
        zone = entry.zone
        if (
            zone.version != entry.zone_version
            or self._zones.get(entry.origin) is not zone
        ):
            del self._templates[key]
            return None
        msg_id, _rd, qname, _qtype, _qclass, edns_payload, _nsid, _suffix = fast
        # The template is only valid for names whose lookup outcome is a
        # function of the suffix alone: the qname must not exist in the
        # zone and must not be a zone origin itself.
        if qname in zone._names or qname in self._zones:
            return None
        qname_wire = qname.to_wire()
        max_size = (
            min(edns_payload, self.max_edns_payload)
            if edns_payload is not None
            else MAX_UDP_PAYLOAD
        )
        if 16 + len(qname_wire) + len(entry.tail) > max_size:
            return None  # would truncate: the slow path handles TC
        out = bytearray(_MSG_ID_STRUCT.pack(msg_id))
        out += entry.header_tail
        out += qname_wire
        out += entry.question_tail
        out += entry.tail
        # Bookkeeping identical to _handle_query/_finish for this branch.
        self.stats.queries += 1
        if entry.rcode == Rcode.NXDOMAIN:
            self.stats.nxdomain += 1
        self.stats.responses += 1
        if self.log_queries:
            self.query_log.append(
                QueryLogEntry(
                    timestamp=now,
                    client=client,
                    qname=qname,
                    qtype=entry.log_rrtype,
                    rcode=entry.rcode,
                )
            )
        return bytes(out)

    def _maybe_build_template(self, fast, wire_out: bytes) -> None:
        """Cache ``wire_out`` as a template when provably qname-independent.

        The proof is empirical: re-answer the same question for a canary
        label of a *different length* (also absent from the zone).  If
        everything outside the question name matches byte-for-byte, no
        compression pointer or length field in the tail depends on the
        qname, so the tail can be replayed for any other absent name
        under the same suffix.
        """
        key = self._template_key(fast)
        if key is None:
            return
        if wire_out[2] & 0x02:  # TC set: truncated responses vary by size
            return
        _msg_id, rd, qname, qtype, _qclass, edns_payload, wants_nsid, suffix = fast
        if qname in self._zones:
            return
        zone = self.find_zone(qname)
        if zone is None or qname in zone._names:
            return
        first = qname.labels[0]
        canary_label = b"\x01" if len(first) != 1 else b"\x01\x02"
        try:
            canary = suffix.child(canary_label)
        except Exception:
            return  # qname at the length limit; not worth caching
        if canary in zone._names or canary in self._zones:
            return
        try:
            rrtype = RRType(qtype)
            log_rrtype = rrtype
        except ValueError:
            rrtype = qtype  # type: ignore[assignment]
            log_rrtype = RRType.ANY
        probe = Message(msg_id=0)
        probe.questions.append(Question(canary, rrtype, RRClass.IN))
        probe.recursion_desired = rd
        response = self._answer(probe)
        if edns_payload is not None:
            response.use_edns(self.max_edns_payload)
            if wants_nsid:
                response.edns_options.append(
                    (Message.EDNS_NSID, self.server_id.encode())
                )
        canary_wire = response.to_wire()
        question_end = 16 + qname.wire_length()
        canary_end = 16 + canary.wire_length()
        if (
            wire_out[2:12] != canary_wire[2:12]
            or wire_out[question_end:] != canary_wire[canary_end:]
        ):
            return  # tail depends on the qname: not cachable
        if len(self._templates) >= self._TEMPLATE_MAX:
            self._templates.clear()
        self._templates[key] = _ResponseTemplate(
            zone=zone,
            zone_version=zone.version,
            origin=zone.origin,
            header_tail=wire_out[2:12],
            question_tail=wire_out[question_end - 4:question_end],
            tail=wire_out[question_end:],
            rcode=Rcode(wire_out[3] & 0x0F),
            log_rrtype=log_rrtype,
        )

    def clear_log(self) -> None:
        self.query_log.clear()
