"""Authoritative name-server engine (the NSD role in the paper).

:class:`AuthoritativeServer` is transport-agnostic: it maps a request
:class:`Message` to a response :class:`Message`.  Transports (simulated
network, real UDP) feed it bytes or messages.  It also keeps a query log,
which plays the role of the paper's server-side packet captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .message import Message, Question
from .name import Name
from .rdata import TXT
from .records import RRset
from .types import MAX_UDP_PAYLOAD, Opcode, Rcode, RRClass, RRType
from .zone import LookupStatus, Zone

CHAOS_ID_SERVER = Name.from_text("id.server.")
CHAOS_HOSTNAME_BIND = Name.from_text("hostname.bind.")


@dataclass(frozen=True)
class QueryLogEntry:
    """One received query, as a server-side capture would record it."""

    timestamp: float
    client: str
    qname: Name
    qtype: RRType
    rcode: Rcode


@dataclass
class ServerStats:
    """Aggregate counters, mirroring an NSD statistics dump."""

    queries: int = 0
    responses: int = 0
    nxdomain: int = 0
    refused: int = 0
    formerr: int = 0
    notimp: int = 0
    chaos: int = 0


class AuthoritativeServer:
    """Serves one or more zones authoritatively.

    Parameters
    ----------
    server_id:
        Identifier returned for CHAOS ``id.server.`` queries; the paper's
        experiment identifies sites this way *and* via per-site TXT data.
    zones:
        Initial zones to load.
    log_queries:
        When true, every query is appended to :attr:`query_log`.
    """

    def __init__(
        self,
        server_id: str,
        zones: Iterable[Zone] = (),
        log_queries: bool = True,
        rate_limiter=None,
    ):
        self.server_id = server_id
        self._zones: dict[Name, Zone] = {}
        self.stats = ServerStats()
        self.query_log: list[QueryLogEntry] = []
        self.log_queries = log_queries
        #: optional :class:`repro.dns.rrl.ResponseRateLimiter`
        self.rate_limiter = rate_limiter
        for zone in zones:
            self.add_zone(zone)

    # -- zone management ---------------------------------------------------

    def add_zone(self, zone: Zone) -> None:
        self._zones[zone.origin] = zone

    def remove_zone(self, origin: Name) -> None:
        self._zones.pop(origin, None)

    def find_zone(self, qname: Name) -> Zone | None:
        """Longest-suffix zone match for a query name."""
        best: Zone | None = None
        for origin, zone in self._zones.items():
            if qname.is_subdomain_of(origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best

    # -- query processing ----------------------------------------------------

    #: the largest EDNS payload this server will honor (NSD's default)
    max_edns_payload = 4096

    def handle_wire(
        self, wire: bytes, client: str = "", now: float = 0.0
    ) -> bytes | None:
        """Decode, process, and encode; ``None`` for undecodable garbage.

        Responses are capped at 512 bytes for plain-DNS clients and at
        min(advertised, 4096) for EDNS clients; larger answers are
        truncated with the TC bit set (the client then retries over TCP).
        """
        try:
            query = Message.from_wire(wire)
        except Exception:
            self.stats.formerr += 1
            return None
        response = self.handle_query(query, client=client, now=now)
        if self.rate_limiter is not None and response.questions:
            from .rrl import RrlAction

            question = response.questions[0]
            response_key = f"{question.name}/{int(question.rrtype)}/{int(response.rcode)}"
            action = self.rate_limiter.check(client, response_key, now)
            if action is RrlAction.DROP:
                return None
            if action is RrlAction.SLIP:
                slip = query.make_response()
                slip.truncated = True
                return slip.to_wire()
        if query.edns_payload is not None:
            max_size = min(query.edns_payload, self.max_edns_payload)
            response.use_edns(self.max_edns_payload)
            if query.nsid is not None:
                # NSID (RFC 5001): identify this instance — the modern
                # alternative to CHAOS id.server for catchment mapping.
                response.edns_options.append(
                    (Message.EDNS_NSID, self.server_id.encode())
                )
        else:
            max_size = MAX_UDP_PAYLOAD
        return response.to_wire(max_size=max_size)

    def handle_wire_tcp(
        self, wire: bytes, client: str = "", now: float = 0.0
    ) -> bytes | None:
        """TCP variant of :meth:`handle_wire`: no size cap, no TC bit.

        TCP also carries zone transfers: AXFR questions are dispatched
        to :mod:`repro.dns.axfr`.
        """
        try:
            query = Message.from_wire(wire)
        except Exception:
            self.stats.formerr += 1
            return None
        if (
            len(query.questions) == 1
            and int(query.questions[0].rrtype) == 252  # AXFR
        ):
            from .axfr import handle_axfr

            self.stats.queries += 1
            self.stats.responses += 1
            return handle_axfr(self, query).to_wire()
        response = self.handle_query(query, client=client, now=now)
        if query.edns_payload is not None:
            response.use_edns(self.max_edns_payload)
        return response.to_wire()

    def handle_query(
        self, query: Message, client: str = "", now: float = 0.0
    ) -> Message:
        """Produce the authoritative response for one query message."""
        self.stats.queries += 1
        response = query.make_response()

        if query.opcode != Opcode.QUERY:
            response.rcode = Rcode.NOTIMP
            self.stats.notimp += 1
            return self._finish(response, client, now)
        if len(query.questions) != 1:
            response.rcode = Rcode.FORMERR
            self.stats.formerr += 1
            return self._finish(response, client, now)

        question = query.questions[0]
        if question.rrclass == RRClass.CH:
            self._answer_chaos(question, response)
            return self._finish(response, client, now)
        if question.rrclass != RRClass.IN:
            response.rcode = Rcode.REFUSED
            self.stats.refused += 1
            return self._finish(response, client, now)

        zone = self.find_zone(question.name)
        if zone is None:
            response.rcode = Rcode.REFUSED
            self.stats.refused += 1
            return self._finish(response, client, now)

        result = zone.lookup(question.name, question.rrtype)
        response.authoritative = result.status != LookupStatus.DELEGATION
        if result.status == LookupStatus.NXDOMAIN:
            response.rcode = Rcode.NXDOMAIN
            self.stats.nxdomain += 1
        self._add_rrsets(response.answers, result.answers)
        self._add_rrsets(response.authorities, result.authority)
        self._add_rrsets(response.additionals, result.additional)
        return self._finish(response, client, now)

    def _answer_chaos(self, question: Question, response: Message) -> None:
        """CHAOS TXT id.server. / hostname.bind. identify this instance."""
        self.stats.chaos += 1
        if question.rrtype == RRType.TXT and question.name in (
            CHAOS_ID_SERVER,
            CHAOS_HOSTNAME_BIND,
        ):
            rrset = RRset(question.name, RRType.TXT, RRClass.CH, 0)
            rrset.add(TXT.from_value(self.server_id))
            self._add_rrsets(response.answers, [rrset])
            response.authoritative = True
        else:
            response.rcode = Rcode.REFUSED

    @staticmethod
    def _add_rrsets(section: list, rrsets: Iterable[RRset]) -> None:
        for rrset in rrsets:
            section.extend(rrset.records())

    def _finish(self, response: Message, client: str, now: float) -> Message:
        self.stats.responses += 1
        if self.log_queries and response.questions:
            question = response.questions[0]
            self.query_log.append(
                QueryLogEntry(
                    timestamp=now,
                    client=client,
                    qname=question.name,
                    qtype=question.rrtype
                    if isinstance(question.rrtype, RRType)
                    else RRType.ANY,
                    rcode=response.rcode,
                )
            )
        return response

    def clear_log(self) -> None:
        self.query_log.clear()
