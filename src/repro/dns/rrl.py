"""Response Rate Limiting (RRL), as in BIND/NSD.

Authoritatives are reflectors in DNS amplification attacks: an attacker
spoofs a victim's address and the server amplifies small queries into
large responses.  RRL bounds identical responses per client per second;
over-limit responses are either dropped or "slipped" — answered with a
truncated (TC) reply, which a *real* client will retry over TCP but a
spoofed victim will ignore.  This is part of the DDoS story in the
paper's §7 "Other Considerations".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RrlAction(enum.Enum):
    """What to do with one response."""

    SEND = "send"
    SLIP = "slip"  # send a truncated, minimal response
    DROP = "drop"


@dataclass
class _Bucket:
    window_start: float
    count: int = 0
    slipped: int = 0


@dataclass
class ResponseRateLimiter:
    """Fixed-window rate limiter keyed by (client network, response key).

    Parameters
    ----------
    responses_per_second:
        Identical responses allowed per key per window.
    slip_ratio:
        Over-limit responses get a TC "slip" every N-th time; others are
        dropped.  ``slip_ratio=1`` slips everything, ``0`` drops all.
    ipv4_prefix_len:
        Clients are aggregated by network (attackers spread over a /24).
    """

    responses_per_second: int = 5
    window_s: float = 1.0
    slip_ratio: int = 2
    ipv4_prefix_len: int = 24
    _buckets: dict[tuple[str, str], _Bucket] = field(default_factory=dict)
    dropped: int = 0
    slipped: int = 0
    _checks_since_prune: int = 0

    #: self-prune cadence: every N checks, expire stale buckets so a
    #: long water-torture campaign (one bucket per unique NOERROR qname)
    #: cannot grow memory without bound.  Pruning is behaviour-neutral —
    #: any pruned bucket is past its window and would be reset on its
    #: next touch anyway — so the cadence being traffic-dependent does
    #: not perturb deterministic slip/drop decisions.
    PRUNE_EVERY = 4096

    def _client_network(self, client: str) -> str:
        address = client.rsplit(":", 1)[0] if ":" in client and client.count(":") == 1 else client
        if "." in address:
            keep = max(1, self.ipv4_prefix_len // 8)
            return ".".join(address.split(".")[:keep])
        return address  # IPv6 or opaque: per-address

    def check(self, client: str, response_key: str, now: float) -> RrlAction:
        """Account one response; returns how to treat it."""
        self._checks_since_prune += 1
        if self._checks_since_prune >= self.PRUNE_EVERY:
            self._checks_since_prune = 0
            self.prune(now)
        key = (self._client_network(client), response_key)
        bucket = self._buckets.get(key)
        if bucket is None or now - bucket.window_start >= self.window_s:
            bucket = _Bucket(window_start=now)
            self._buckets[key] = bucket
        bucket.count += 1
        if bucket.count <= self.responses_per_second:
            return RrlAction.SEND
        over = bucket.count - self.responses_per_second
        if self.slip_ratio > 0 and over % self.slip_ratio == 0:
            bucket.slipped += 1
            self.slipped += 1
            return RrlAction.SLIP
        self.dropped += 1
        return RrlAction.DROP

    def prune(self, now: float) -> int:
        """Drop stale buckets; returns how many were removed."""
        stale = [
            key
            for key, bucket in self._buckets.items()
            if now - bucket.window_start >= 2 * self.window_s
        ]
        for key in stale:
            del self._buckets[key]
        return len(stale)
