"""Zone data model and authoritative lookup logic.

A :class:`Zone` stores RRsets indexed by (owner name, type) and answers
the classic authoritative questions: exact match, CNAME chase, delegation
(referral), wildcard synthesis, NXDOMAIN vs NODATA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import ZoneError
from .name import Name
from .rdata import CNAME, NS, SOA, Rdata
from .records import ResourceRecord, RRset
from .types import RRClass, RRType

WILDCARD_LABEL = b"*"


class LookupStatus(enum.Enum):
    """Outcome category of a zone lookup."""

    SUCCESS = "success"          # answer RRset(s) found
    CNAME = "cname"              # alias found; answer holds the CNAME chain
    DELEGATION = "delegation"    # below a zone cut; authority holds NS
    NODATA = "nodata"            # name exists, type does not
    NXDOMAIN = "nxdomain"        # name does not exist


@dataclass
class LookupResult:
    """Outcome of :meth:`Zone.lookup`."""

    status: LookupStatus
    answers: list[RRset] = field(default_factory=list)
    authority: list[RRset] = field(default_factory=list)
    additional: list[RRset] = field(default_factory=list)


class Zone:
    """An authoritative zone."""

    def __init__(self, origin: Name | str, rrclass: RRClass = RRClass.IN):
        if isinstance(origin, str):
            origin = Name.from_text(origin)
        self.origin = origin.intern()
        self.rrclass = rrclass
        self._rrsets: dict[tuple[Name, RRType], RRset] = {}
        #: owner name -> {type: rrset}, so per-owner walks (ANY answers,
        #: glue) are O(owner's types), not a scan of the whole zone.
        self._by_owner: dict[Name, dict[RRType, RRset]] = {}
        self._names: set[Name] = set()
        #: bumped on every mutation; response-template caches key on it.
        self.version = 0

    # -- mutation ---------------------------------------------------------

    def add_record(self, record: ResourceRecord) -> None:
        if not record.name.is_subdomain_of(self.origin):
            raise ZoneError(f"{record.name} is out of zone {self.origin}")
        key = (record.name, record.rrtype)
        rrset = self._rrsets.get(key)
        if rrset is None:
            rrset = RRset(record.name, record.rrtype, record.rrclass, record.ttl)
            self._rrsets[key] = rrset
            self._by_owner.setdefault(record.name, {})[record.rrtype] = rrset
        rrset.add(record.rdata, record.ttl)
        self.version += 1
        # Record every ancestor as an existing (possibly empty non-terminal)
        # name so NODATA vs NXDOMAIN is decided correctly.
        name = record.name
        while True:
            self._names.add(name)
            if name == self.origin:
                break
            name = name.parent()

    def add(
        self,
        name: Name | str,
        rrtype: RRType,
        rdata: Rdata,
        ttl: int = 3600,
    ) -> None:
        """Convenience wrapper around :meth:`add_record`."""
        if isinstance(name, str):
            name = Name.from_text(name)
        self.add_record(ResourceRecord(name, rrtype, self.rrclass, ttl, rdata))

    def delete_rrset(self, name: Name, rrtype: RRType) -> bool:
        """Remove one (owner, type) RRset; True when something was removed.

        The owner stays in the name tree (an RFC 2136 delete does not
        un-exist empty non-terminals), so the lookup outcome for the
        deleted type becomes NODATA, exactly as if the RRset were empty.
        """
        rrset = self._rrsets.pop((name, rrtype), None)
        if rrset is None:
            return False
        by_type = self._by_owner.get(name)
        if by_type is not None:
            by_type.pop(rrtype, None)
            if not by_type:
                del self._by_owner[name]
        self.version += 1
        return True

    def remove_rdata(self, name: Name, rrtype: RRType, rdata: Rdata) -> bool:
        """Remove a single RR from its RRset; True when it was present."""
        rrset = self._rrsets.get((name, rrtype))
        if rrset is None or rdata not in rrset.rdatas:
            return False
        rrset.rdatas.remove(rdata)
        self.version += 1
        return True

    def bump_version(self) -> None:
        """Invalidate cached response templates after out-of-band edits."""
        self.version += 1

    # -- accessors ----------------------------------------------------------

    def get_rrset(self, name: Name, rrtype: RRType) -> RRset | None:
        return self._rrsets.get((name, rrtype))

    def rrsets(self) -> list[RRset]:
        return list(self._rrsets.values())

    @property
    def soa(self) -> RRset | None:
        return self._rrsets.get((self.origin, RRType.SOA))

    def validate(self) -> None:
        """Check minimal invariants: one SOA at apex, NS at apex."""
        soa = self.soa
        if soa is None or len(soa) != 1:
            raise ZoneError(f"zone {self.origin} needs exactly one SOA at its apex")
        if (self.origin, RRType.NS) not in self._rrsets:
            raise ZoneError(f"zone {self.origin} needs NS records at its apex")

    def soa_negative_ttl(self) -> int:
        """Negative-caching TTL: min(SOA TTL, SOA MINIMUM), RFC 2308."""
        soa = self.soa
        if soa is None:
            return 0
        minimum = soa.rdatas[0].minimum if isinstance(soa.rdatas[0], SOA) else 0
        return min(soa.ttl, minimum)

    # -- lookup -------------------------------------------------------------

    def _find_zone_cut(self, qname: Name) -> Name | None:
        """Deepest delegation point strictly between origin and qname, if any."""
        # Walk down from just below the origin toward the qname; the first
        # name with NS records is the cut (NS below the apex delegates).
        relative = qname.relativize(self.origin)
        name = self.origin
        for label in reversed(relative):
            name = name.child(label)
            if (name, RRType.NS) in self._rrsets:
                return name
        return None

    def lookup(self, qname: Name, qtype: RRType) -> LookupResult:
        """Authoritatively resolve ``qname``/``qtype`` within this zone."""
        if not qname.is_subdomain_of(self.origin):
            return LookupResult(LookupStatus.NXDOMAIN)

        cut = self._find_zone_cut(qname)
        if cut is not None:
            ns_rrset = self._rrsets[(cut, RRType.NS)]
            result = LookupResult(LookupStatus.DELEGATION, authority=[ns_rrset])
            result.additional = self._glue_for(ns_rrset)
            return result

        exact_any = qname in self._names
        if exact_any:
            rrset = self._rrsets.get((qname, qtype))
            if rrset:
                return LookupResult(LookupStatus.SUCCESS, answers=[rrset])
            cname = self._rrsets.get((qname, RRType.CNAME))
            if cname and qtype != RRType.CNAME:
                return self._chase_cname(cname, qtype)
            if qtype == RRType.ANY:
                by_type = self._by_owner.get(qname)
                if by_type:
                    answers = [rs for rs in by_type.values() if rs]
                    if answers:
                        return LookupResult(
                            LookupStatus.SUCCESS, answers=answers
                        )
            return self._negative(LookupStatus.NODATA)

        wildcard_result = self._try_wildcard(qname, qtype)
        if wildcard_result is not None:
            return wildcard_result
        return self._negative(LookupStatus.NXDOMAIN)

    def _chase_cname(self, cname_rrset: RRset, qtype: RRType) -> LookupResult:
        """Follow an in-zone CNAME chain, collecting the records crossed."""
        answers = [cname_rrset]
        seen: set[Name] = {cname_rrset.name}
        target = cname_rrset.rdatas[0]
        assert isinstance(target, CNAME)
        current = target.target
        while True:
            if current in seen or not current.is_subdomain_of(self.origin):
                break
            seen.add(current)
            final = self._rrsets.get((current, qtype))
            if final:
                answers.append(final)
                break
            next_cname = self._rrsets.get((current, RRType.CNAME))
            if not next_cname:
                break
            answers.append(next_cname)
            rdata = next_cname.rdatas[0]
            assert isinstance(rdata, CNAME)
            current = rdata.target
        return LookupResult(LookupStatus.CNAME, answers=answers)

    def _try_wildcard(self, qname: Name, qtype: RRType) -> LookupResult | None:
        """RFC 1034 §4.3.3 wildcard synthesis."""
        relative = qname.relativize(self.origin)
        # The closest encloser walk: replace leading labels with "*".
        # All candidate labels are slices of the (validated) qname, so
        # the flyweight constructor applies.
        for skip in range(1, len(relative) + 1):
            encloser = Name._from_validated(
                relative[skip:] + self.origin.labels
            )
            wildcard = encloser.child(WILDCARD_LABEL)
            if encloser in self._names:
                rrset = self._rrsets.get((wildcard, qtype))
                if rrset:
                    synthesized = RRset(qname, rrset.rrtype, rrset.rrclass, rrset.ttl)
                    for rdata in rrset:
                        synthesized.add(rdata)
                    return LookupResult(LookupStatus.SUCCESS, answers=[synthesized])
                if wildcard in self._names:
                    return self._negative(LookupStatus.NODATA)
                return None
        return None

    def _negative(self, status: LookupStatus) -> LookupResult:
        authority = [self.soa] if self.soa else []
        return LookupResult(status, authority=authority)

    def _glue_for(self, ns_rrset: RRset) -> list[RRset]:
        glue: list[RRset] = []
        for rdata in ns_rrset:
            if not isinstance(rdata, NS):
                continue
            by_type = self._by_owner.get(rdata.target)
            if not by_type:
                continue
            for addr_type in (RRType.A, RRType.AAAA):
                addr = by_type.get(addr_type)
                if addr:
                    glue.append(addr)
        return glue
