"""Master-file (zone file) parsing and serialization, RFC 1035 §5.

Supports ``$ORIGIN``, ``$TTL``, multi-line parentheses, quoted strings,
comments, inherited owner names and TTLs, and relative names.
"""

from __future__ import annotations

from .errors import ZoneFileSyntaxError
from .name import Name
from .rdata import rdata_from_text
from .records import ResourceRecord
from .types import RRClass, RRType
from .zone import Zone


def _tokenize(text: str) -> list[tuple[int, list[str], bool]]:
    """Split zone-file text into logical lines of tokens.

    Returns (line number, tokens, owner_inherited) triples, where
    ``owner_inherited`` is true when the physical line began with
    whitespace (RFC 1035: the owner is the last stated owner).
    """
    logical: list[tuple[int, list[str], bool]] = []
    tokens: list[str] = []
    depth = 0
    start_line = 1
    owner_inherited = False

    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if depth == 0:
            if not line.strip() or line.lstrip().startswith(";"):
                continue
            start_line = lineno
            owner_inherited = line[0] in " \t"
            tokens = []
        i = 0
        n = len(line)
        while i < n:
            char = line[i]
            if char == ";":
                break
            if char in " \t":
                i += 1
                continue
            if char == "(":
                depth += 1
                i += 1
                continue
            if char == ")":
                if depth == 0:
                    raise ZoneFileSyntaxError("unbalanced ')'", lineno)
                depth -= 1
                i += 1
                continue
            if char == '"':
                j = i + 1
                out = []
                while j < n:
                    if line[j] == "\\" and j + 1 < n:
                        out.append(line[j : j + 2])
                        j += 2
                        continue
                    if line[j] == '"':
                        break
                    out.append(line[j])
                    j += 1
                if j >= n:
                    raise ZoneFileSyntaxError("unterminated string", lineno)
                tokens.append('"' + "".join(out) + '"')
                i = j + 1
                continue
            j = i
            while j < n and line[j] not in ' \t;()"':
                j += 1
            tokens.append(line[i:j])
            i = j
        if depth == 0 and tokens:
            logical.append((start_line, tokens, owner_inherited))
            tokens = []
    if depth != 0:
        raise ZoneFileSyntaxError("unbalanced '(' at end of file", len(lines))
    return logical


def _is_ttl(token: str) -> bool:
    return bool(token) and token[0].isdigit()


def _parse_ttl(token: str, lineno: int) -> int:
    """Parse a TTL, accepting unit suffixes (s, m, h, d, w)."""
    units = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}
    token = token.lower()
    if token[-1] in units:
        factor = units[token[-1]]
        digits = token[:-1]
    else:
        factor = 1
        digits = token
    if not digits.isdigit():
        raise ZoneFileSyntaxError(f"bad TTL {token!r}", lineno)
    return int(digits) * factor


def _is_class(token: str) -> bool:
    try:
        RRClass.from_text(token)
        return True
    except ValueError:
        return False


def _is_type(token: str) -> bool:
    try:
        RRType.from_text(token)
        return True
    except ValueError:
        return False


def _expand_generate_template(template: str, value: int, lineno: int) -> str:
    """Substitute ``$`` and ``${offset[,width[,radix]]}`` (RFC-less BIND
    $GENERATE syntax) with ``value``."""
    out: list[str] = []
    i = 0
    n = len(template)
    while i < n:
        char = template[i]
        if char != "$":
            out.append(char)
            i += 1
            continue
        if i + 1 < n and template[i + 1] == "$":
            out.append("$")
            i += 2
            continue
        if i + 1 < n and template[i + 1] == "{":
            end = template.find("}", i)
            if end == -1:
                raise ZoneFileSyntaxError("unterminated ${...} in $GENERATE", lineno)
            spec = template[i + 2 : end].split(",")
            try:
                offset = int(spec[0]) if spec[0] else 0
                width = int(spec[1]) if len(spec) > 1 and spec[1] else 0
                radix = spec[2] if len(spec) > 2 and spec[2] else "d"
            except ValueError:
                raise ZoneFileSyntaxError(f"bad ${{...}} spec {spec!r}", lineno)
            formats = {"d": "d", "x": "x", "X": "X", "o": "o"}
            if radix not in formats:
                raise ZoneFileSyntaxError(f"bad $GENERATE radix {radix!r}", lineno)
            out.append(format(value + offset, f"0{width}{formats[radix]}"))
            i = end + 1
        else:
            out.append(str(value))
            i += 1
    return "".join(out)


class _ZoneParser:
    """Stateful master-file parser (origin, default TTL, last owner)."""

    def __init__(self, zone: Zone, origin: Name, include_loader=None):
        self.zone = zone
        self.current_origin = origin
        self.default_ttl: int | None = None
        self.last_owner: Name | None = None
        self.include_loader = include_loader
        self._include_depth = 0

    def parse(self, text: str) -> None:
        for lineno, tokens, owner_inherited in _tokenize(text):
            self._handle_line(lineno, tokens, owner_inherited)

    # -- directives ---------------------------------------------------------

    def _handle_line(self, lineno, tokens, owner_inherited) -> None:
        directive = tokens[0].upper()
        if directive == "$ORIGIN":
            if len(tokens) != 2:
                raise ZoneFileSyntaxError("$ORIGIN needs one argument", lineno)
            self.current_origin = Name.from_text(tokens[1])
            return
        if directive == "$TTL":
            if len(tokens) != 2:
                raise ZoneFileSyntaxError("$TTL needs one argument", lineno)
            self.default_ttl = _parse_ttl(tokens[1], lineno)
            return
        if directive == "$GENERATE":
            self._handle_generate(lineno, tokens)
            return
        if directive == "$INCLUDE":
            self._handle_include(lineno, tokens)
            return
        if directive.startswith("$"):
            raise ZoneFileSyntaxError(f"unsupported directive {tokens[0]}", lineno)
        self._handle_record(lineno, tokens, owner_inherited)

    def _handle_generate(self, lineno, tokens) -> None:
        """``$GENERATE start-stop[/step] lhs [ttl] [class] type rhs``."""
        if len(tokens) < 4:
            raise ZoneFileSyntaxError("$GENERATE needs range, lhs, type, rhs", lineno)
        range_token = tokens[1]
        step = 1
        if "/" in range_token:
            range_token, step_token = range_token.split("/", 1)
            if not step_token.isdigit() or int(step_token) < 1:
                raise ZoneFileSyntaxError(f"bad $GENERATE step {step_token!r}", lineno)
            step = int(step_token)
        if "-" not in range_token:
            raise ZoneFileSyntaxError(f"bad $GENERATE range {range_token!r}", lineno)
        start_token, stop_token = range_token.split("-", 1)
        if not (start_token.isdigit() and stop_token.isdigit()):
            raise ZoneFileSyntaxError(f"bad $GENERATE range {range_token!r}", lineno)
        start, stop = int(start_token), int(stop_token)
        if stop < start:
            raise ZoneFileSyntaxError("$GENERATE stop before start", lineno)
        if (stop - start) // step + 1 > 65536:
            raise ZoneFileSyntaxError("$GENERATE range too large", lineno)
        body = tokens[2:]
        for value in range(start, stop + 1, step):
            expanded = [
                _expand_generate_template(token, value, lineno) for token in body
            ]
            self._handle_record(lineno, expanded, owner_inherited=False)

    def _handle_include(self, lineno, tokens) -> None:
        if self.include_loader is None:
            raise ZoneFileSyntaxError(
                "$INCLUDE needs an include loader (use parse_zone_file)", lineno
            )
        if len(tokens) not in (2, 3):
            raise ZoneFileSyntaxError("$INCLUDE needs a filename", lineno)
        if self._include_depth >= 8:
            raise ZoneFileSyntaxError("$INCLUDE nesting too deep", lineno)
        saved_origin = self.current_origin
        if len(tokens) == 3:
            self.current_origin = Name.from_text(tokens[2])
        self._include_depth += 1
        try:
            self.parse(self.include_loader(tokens[1]))
        finally:
            self._include_depth -= 1
            self.current_origin = saved_origin

    # -- records ---------------------------------------------------------------

    def _handle_record(self, lineno, tokens, owner_inherited) -> None:
        if owner_inherited:
            owner = self.last_owner
            rest = tokens
        else:
            token = tokens[0]
            if token == "@":
                owner = self.current_origin
            elif token.endswith("."):
                owner = Name.from_text(token)
            else:
                owner = Name.from_text(token).concatenate(self.current_origin)
            rest = tokens[1:]
        if owner is None:
            raise ZoneFileSyntaxError("record without owner name", lineno)
        self.last_owner = owner

        ttl: int | None = None
        rrclass = RRClass.IN
        # TTL and class may appear in either order before the type.
        while rest:
            if _is_ttl(rest[0]) and ttl is None:
                ttl = _parse_ttl(rest[0], lineno)
                rest = rest[1:]
            elif _is_class(rest[0]):
                rrclass = RRClass.from_text(rest[0])
                rest = rest[1:]
            else:
                break
        if not rest:
            raise ZoneFileSyntaxError("record has no type", lineno)
        if not _is_type(rest[0]):
            raise ZoneFileSyntaxError(f"unknown RR type {rest[0]!r}", lineno)
        rrtype = RRType.from_text(rest[0])
        rdata_tokens = rest[1:]
        if ttl is None:
            ttl = self.default_ttl
        if ttl is None:
            raise ZoneFileSyntaxError("no TTL and no $TTL default", lineno)

        try:
            rdata = rdata_from_text(rrtype, rdata_tokens, self.current_origin)
        except (ValueError, IndexError) as exc:
            raise ZoneFileSyntaxError(f"bad {rrtype.to_text()} rdata: {exc}", lineno)
        self.zone.add_record(ResourceRecord(owner, rrtype, rrclass, ttl, rdata))


def parse_zone_text(
    text: str, origin: Name | str, include_loader=None
) -> Zone:
    """Parse master-file text into a :class:`Zone` rooted at ``origin``.

    ``include_loader`` maps an ``$INCLUDE`` filename to its text; without
    one, ``$INCLUDE`` is an error (use :func:`parse_zone_file` for real
    files).
    """
    if isinstance(origin, str):
        origin = Name.from_text(origin)
    zone = Zone(origin)
    parser = _ZoneParser(zone, origin, include_loader=include_loader)
    parser.parse(text)
    return zone


def parse_zone_file(path, origin: Name | str) -> Zone:
    """Parse a master file from disk; ``$INCLUDE`` paths resolve relative
    to the including file's directory."""
    from pathlib import Path

    path = Path(path)
    base = path.parent

    def loader(name: str) -> str:
        candidate = Path(name)
        if not candidate.is_absolute():
            candidate = base / candidate
        return candidate.read_text()

    return parse_zone_text(path.read_text(), origin, include_loader=loader)


def zone_to_text(zone: Zone) -> str:
    """Serialize a zone back to master-file text (SOA first)."""
    lines = [f"$ORIGIN {zone.origin.to_text()}"]
    rrsets = sorted(
        zone.rrsets(),
        key=lambda rs: (rs.rrtype != RRType.SOA, rs.name, int(rs.rrtype)),
    )
    for rrset in rrsets:
        for record in rrset.records():
            lines.append(record.to_text())
    return "\n".join(lines) + "\n"
