"""DNS messages: header, question, and the four record sections.

Encoding applies RFC 1035 name compression across the whole message;
decoding follows compression pointers and validates counts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .errors import TruncatedMessageError, WireFormatError
from .name import Name
from .records import ResourceRecord
from .types import (
    FLAG_AA,
    FLAG_AD,
    FLAG_CD,
    FLAG_QR,
    FLAG_RA,
    FLAG_RD,
    FLAG_TC,
    Opcode,
    Rcode,
    RRClass,
    RRType,
)

HEADER_STRUCT = struct.Struct("!HHHHHH")


@dataclass(frozen=True)
class Question:
    """One entry of the question section."""

    name: Name
    rrtype: RRType
    rrclass: RRClass = RRClass.IN

    def to_wire(self, compress: dict[Name, int] | None = None, offset: int = 0) -> bytes:
        return self.name.to_wire(compress, offset) + struct.pack(
            "!HH", int(self.rrtype), int(self.rrclass)
        )

    @classmethod
    def from_wire(cls, wire: bytes, offset: int) -> tuple["Question", int]:
        name, cursor = Name.from_wire(wire, offset)
        if cursor + 4 > len(wire):
            raise TruncatedMessageError("question truncated")
        type_code, class_code = struct.unpack_from("!HH", wire, cursor)
        try:
            rrtype = RRType(type_code)
        except ValueError:
            rrtype = type_code  # type: ignore[assignment]
        try:
            rrclass = RRClass(class_code)
        except ValueError:
            rrclass = class_code  # type: ignore[assignment]
        return cls(name, rrtype, rrclass), cursor + 4

    def to_text(self) -> str:
        rrtype = self.rrtype.to_text() if isinstance(self.rrtype, RRType) else f"TYPE{self.rrtype}"
        return f"{self.name.to_text()} {RRClass(self.rrclass).to_text()} {rrtype}"


@dataclass
class Message:
    """A complete DNS message.

    EDNS0 (RFC 6891) is handled as message state, not as a literal
    record: ``edns_payload`` holds the advertised UDP payload size when
    the message carries an OPT pseudo-record (None otherwise).  The OPT
    record is synthesized on encode and absorbed on decode.
    """

    msg_id: int = 0
    flags: int = 0
    opcode: Opcode = Opcode.QUERY
    rcode: Rcode = Rcode.NOERROR
    questions: list[Question] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    authorities: list[ResourceRecord] = field(default_factory=list)
    additionals: list[ResourceRecord] = field(default_factory=list)
    edns_payload: int | None = None
    #: EDNS options as (code, payload) pairs; NSID is code 3 (RFC 5001)
    edns_options: list[tuple[int, bytes]] = field(default_factory=list)

    EDNS_NSID = 3

    # -- flag helpers ---------------------------------------------------

    def _flag(self, mask: int) -> bool:
        return bool(self.flags & mask)

    def _set_flag(self, mask: int, value: bool) -> None:
        if value:
            self.flags |= mask
        else:
            self.flags &= ~mask

    @property
    def is_response(self) -> bool:
        return self._flag(FLAG_QR)

    @is_response.setter
    def is_response(self, value: bool) -> None:
        self._set_flag(FLAG_QR, value)

    @property
    def authoritative(self) -> bool:
        return self._flag(FLAG_AA)

    @authoritative.setter
    def authoritative(self, value: bool) -> None:
        self._set_flag(FLAG_AA, value)

    @property
    def truncated(self) -> bool:
        return self._flag(FLAG_TC)

    @truncated.setter
    def truncated(self, value: bool) -> None:
        self._set_flag(FLAG_TC, value)

    @property
    def recursion_desired(self) -> bool:
        return self._flag(FLAG_RD)

    @recursion_desired.setter
    def recursion_desired(self, value: bool) -> None:
        self._set_flag(FLAG_RD, value)

    @property
    def recursion_available(self) -> bool:
        return self._flag(FLAG_RA)

    @recursion_available.setter
    def recursion_available(self, value: bool) -> None:
        self._set_flag(FLAG_RA, value)

    # -- construction helpers --------------------------------------------

    @classmethod
    def make_query(
        cls,
        name: Name | str,
        rrtype: RRType,
        rrclass: RRClass = RRClass.IN,
        msg_id: int = 0,
        recursion_desired: bool = True,
    ) -> "Message":
        if isinstance(name, str):
            name = Name.from_text(name)
        message = cls(msg_id=msg_id)
        message.questions.append(Question(name, rrtype, rrclass))
        message.recursion_desired = recursion_desired
        return message

    def use_edns(self, payload: int = 4096) -> "Message":
        """Attach an EDNS0 OPT advertising ``payload`` bytes; returns self."""
        if not 512 <= payload <= 65535:
            raise WireFormatError(f"EDNS payload {payload} out of range")
        self.edns_payload = payload
        return self

    def request_nsid(self) -> "Message":
        """Ask the server to identify itself via the NSID option."""
        if self.edns_payload is None:
            self.use_edns()
        if (self.EDNS_NSID, b"") not in self.edns_options:
            self.edns_options.append((self.EDNS_NSID, b""))
        return self

    @property
    def nsid(self) -> bytes | None:
        """The NSID payload of this message, if present."""
        for code, payload in self.edns_options:
            if code == self.EDNS_NSID:
                return payload
        return None

    def make_response(self) -> "Message":
        """Start a response to this query: copy id, question, RD, EDNS."""
        response = Message(msg_id=self.msg_id, opcode=self.opcode)
        response.questions = list(self.questions)
        response.is_response = True
        response.recursion_desired = self.recursion_desired
        if self.edns_payload is not None:
            response.edns_payload = self.edns_payload
        return response

    @property
    def question(self) -> Question:
        """The sole question; raises when the count is not exactly one."""
        if len(self.questions) != 1:
            raise WireFormatError(f"expected 1 question, have {len(self.questions)}")
        return self.questions[0]

    # -- wire format ------------------------------------------------------

    def to_wire(self, max_size: int | None = None) -> bytes:
        """Encode with name compression.

        When ``max_size`` is given and the message does not fit, the answer
        sections are dropped and the TC bit is set (UDP truncation).
        """
        wire = self._encode()
        if max_size is not None and len(wire) > max_size:
            truncated = Message(
                msg_id=self.msg_id,
                flags=self.flags | FLAG_TC,
                opcode=self.opcode,
                rcode=self.rcode,
                questions=list(self.questions),
                edns_payload=self.edns_payload,
                edns_options=list(self.edns_options),
            )
            wire = truncated._encode()
        return wire

    def _opt_record(self) -> ResourceRecord:
        """Synthesize the OPT pseudo-record for this message's EDNS state."""
        from .name import ROOT
        from .rdata import OPT

        return ResourceRecord(
            ROOT,
            RRType.OPT,
            self.edns_payload,  # type: ignore[arg-type]  # CLASS = payload
            0,
            OPT.encode_options(self.edns_options) if self.edns_options else OPT(),
        )

    def _encode(self) -> bytes:
        flags = (
            (self.flags & ~0x7800 & ~0x000F)
            | (int(self.opcode) << 11)
            | (int(self.rcode) & 0x000F)
        )
        additionals = list(self.additionals)
        if self.edns_payload is not None:
            additionals.append(self._opt_record())
        out = bytearray(
            HEADER_STRUCT.pack(
                self.msg_id,
                flags,
                len(self.questions),
                len(self.answers),
                len(self.authorities),
                len(additionals),
            )
        )
        compress: dict[Name, int] = {}
        for question in self.questions:
            out += question.to_wire(compress, len(out))
        for record in self.answers + self.authorities + additionals:
            out += record.to_wire(compress, len(out))
        return bytes(out)

    @classmethod
    def from_wire(cls, wire: bytes) -> "Message":
        if len(wire) < HEADER_STRUCT.size:
            raise TruncatedMessageError("message shorter than header")
        msg_id, flags, qdcount, ancount, nscount, arcount = HEADER_STRUCT.unpack_from(wire)
        # Keep AA/TC/RD/RA/AD/CD bits; opcode and rcode live in fields.
        message = cls(
            msg_id=msg_id,
            flags=flags
            & (FLAG_QR | FLAG_AA | FLAG_TC | FLAG_RD | FLAG_RA | FLAG_AD | FLAG_CD),
            opcode=Opcode((flags >> 11) & 0xF),
            rcode=Rcode(flags & 0xF),
        )
        cursor = HEADER_STRUCT.size
        for _ in range(qdcount):
            question, cursor = Question.from_wire(wire, cursor)
            message.questions.append(question)
        for count, section in (
            (ancount, message.answers),
            (nscount, message.authorities),
            (arcount, message.additionals),
        ):
            for _ in range(count):
                record, cursor = ResourceRecord.from_wire(wire, cursor)
                section.append(record)
        # Absorb the OPT pseudo-record into EDNS state (RFC 6891 §6.1.1).
        for record in list(message.additionals):
            if record.rrtype == RRType.OPT:
                message.edns_payload = int(record.rrclass)
                decode = getattr(record.rdata, "decode_options", None)
                if decode is not None:
                    message.edns_options = decode()
                message.additionals.remove(record)
        return message

    def to_text(self) -> str:
        lines = [
            f";; id {self.msg_id} opcode {self.opcode.name} rcode {self.rcode.to_text()}"
            f" flags{' qr' if self.is_response else ''}{' aa' if self.authoritative else ''}"
            f"{' tc' if self.truncated else ''}{' rd' if self.recursion_desired else ''}"
            f"{' ra' if self.recursion_available else ''}",
            ";; QUESTION",
            *(f";{q.to_text()}" for q in self.questions),
        ]
        for title, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authorities),
            ("ADDITIONAL", self.additionals),
        ):
            if section:
                lines.append(f";; {title}")
                lines.extend(record.to_text() for record in section)
        return "\n".join(lines)
