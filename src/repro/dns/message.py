"""DNS messages: header, question, and the four record sections.

Encoding applies RFC 1035 name compression across the whole message;
decoding follows compression pointers and validates counts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .errors import TruncatedMessageError, WireFormatError
from .name import Name
from .records import ResourceRecord
from .types import (
    FLAG_AA,
    FLAG_AD,
    FLAG_CD,
    FLAG_QR,
    FLAG_RA,
    FLAG_RD,
    FLAG_TC,
    OPCODE_BY_CODE,
    RCODE_BY_CODE,
    RRCLASS_BY_CODE,
    RRTYPE_BY_CODE,
    Opcode,
    Rcode,
    RRClass,
    RRType,
)

HEADER_STRUCT = struct.Struct("!HHHHHH")
QUESTION_TAIL_STRUCT = struct.Struct("!HH")


@dataclass(frozen=True)
class Question:
    """One entry of the question section."""

    name: Name
    rrtype: RRType
    rrclass: RRClass = RRClass.IN

    def to_wire(self, compress: dict[Name, int] | None = None, offset: int = 0) -> bytes:
        return self.name.to_wire(compress, offset) + QUESTION_TAIL_STRUCT.pack(
            int(self.rrtype), int(self.rrclass)
        )

    def wire_into(
        self, out: bytearray, compress: dict[Name, int] | None = None
    ) -> None:
        """Append this question to a whole-message buffer (fast path)."""
        self.name.wire_into(out, compress)
        out += QUESTION_TAIL_STRUCT.pack(int(self.rrtype), int(self.rrclass))

    @classmethod
    def from_wire(
        cls, wire: bytes, offset: int, _memo: dict | None = None
    ) -> tuple["Question", int]:
        name, cursor = Name.from_wire(wire, offset, _memo)
        if cursor + 4 > len(wire):
            raise TruncatedMessageError("question truncated")
        type_code, class_code = QUESTION_TAIL_STRUCT.unpack_from(wire, cursor)
        rrtype = RRTYPE_BY_CODE.get(type_code, type_code)
        rrclass = RRCLASS_BY_CODE.get(class_code, class_code)
        return cls(name, rrtype, rrclass), cursor + 4

    def to_text(self) -> str:
        rrtype = self.rrtype.to_text() if isinstance(self.rrtype, RRType) else f"TYPE{self.rrtype}"
        return f"{self.name.to_text()} {RRClass(self.rrclass).to_text()} {rrtype}"


@dataclass
class Message:
    """A complete DNS message.

    EDNS0 (RFC 6891) is handled as message state, not as a literal
    record: ``edns_payload`` holds the advertised UDP payload size when
    the message carries an OPT pseudo-record (None otherwise).  The OPT
    record is synthesized on encode and absorbed on decode.
    """

    msg_id: int = 0
    flags: int = 0
    opcode: Opcode = Opcode.QUERY
    rcode: Rcode = Rcode.NOERROR
    questions: list[Question] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    authorities: list[ResourceRecord] = field(default_factory=list)
    additionals: list[ResourceRecord] = field(default_factory=list)
    edns_payload: int | None = None
    #: EDNS options as (code, payload) pairs; NSID is code 3 (RFC 5001)
    edns_options: list[tuple[int, bytes]] = field(default_factory=list)

    EDNS_NSID = 3

    # -- flag helpers ---------------------------------------------------

    def _flag(self, mask: int) -> bool:
        return bool(self.flags & mask)

    def _set_flag(self, mask: int, value: bool) -> None:
        if value:
            self.flags |= mask
        else:
            self.flags &= ~mask

    @property
    def is_response(self) -> bool:
        return self._flag(FLAG_QR)

    @is_response.setter
    def is_response(self, value: bool) -> None:
        self._set_flag(FLAG_QR, value)

    @property
    def authoritative(self) -> bool:
        return self._flag(FLAG_AA)

    @authoritative.setter
    def authoritative(self, value: bool) -> None:
        self._set_flag(FLAG_AA, value)

    @property
    def truncated(self) -> bool:
        return self._flag(FLAG_TC)

    @truncated.setter
    def truncated(self, value: bool) -> None:
        self._set_flag(FLAG_TC, value)

    @property
    def recursion_desired(self) -> bool:
        return self._flag(FLAG_RD)

    @recursion_desired.setter
    def recursion_desired(self, value: bool) -> None:
        self._set_flag(FLAG_RD, value)

    @property
    def recursion_available(self) -> bool:
        return self._flag(FLAG_RA)

    @recursion_available.setter
    def recursion_available(self, value: bool) -> None:
        self._set_flag(FLAG_RA, value)

    # -- construction helpers --------------------------------------------

    @classmethod
    def make_query(
        cls,
        name: Name | str,
        rrtype: RRType,
        rrclass: RRClass = RRClass.IN,
        msg_id: int = 0,
        recursion_desired: bool = True,
    ) -> "Message":
        if isinstance(name, str):
            name = Name.from_text(name)
        message = cls(msg_id=msg_id)
        message.questions.append(Question(name, rrtype, rrclass))
        message.recursion_desired = recursion_desired
        return message

    def use_edns(self, payload: int = 4096) -> "Message":
        """Attach an EDNS0 OPT advertising ``payload`` bytes; returns self."""
        if not 512 <= payload <= 65535:
            raise WireFormatError(f"EDNS payload {payload} out of range")
        self.edns_payload = payload
        return self

    def request_nsid(self) -> "Message":
        """Ask the server to identify itself via the NSID option."""
        if self.edns_payload is None:
            self.use_edns()
        if (self.EDNS_NSID, b"") not in self.edns_options:
            self.edns_options.append((self.EDNS_NSID, b""))
        return self

    @property
    def nsid(self) -> bytes | None:
        """The NSID payload of this message, if present."""
        for code, payload in self.edns_options:
            if code == self.EDNS_NSID:
                return payload
        return None

    def make_response(self) -> "Message":
        """Start a response to this query: copy id, question, RD, EDNS."""
        response = Message(msg_id=self.msg_id, opcode=self.opcode)
        response.questions = list(self.questions)
        response.is_response = True
        response.recursion_desired = self.recursion_desired
        if self.edns_payload is not None:
            response.edns_payload = self.edns_payload
        return response

    @property
    def question(self) -> Question:
        """The sole question; raises when the count is not exactly one."""
        if len(self.questions) != 1:
            raise WireFormatError(f"expected 1 question, have {len(self.questions)}")
        return self.questions[0]

    # -- wire format ------------------------------------------------------

    def to_wire(self, max_size: int | None = None) -> bytes:
        """Encode with name compression.

        When ``max_size`` is given and the message does not fit, the answer
        sections are dropped and the TC bit is set (UDP truncation).  The
        truncated form reuses the already-encoded header + question bytes
        instead of building and re-encoding a second :class:`Message`:
        questions are the first names emitted, so their encoding (and the
        compression state it implies) is identical in both renderings.
        """
        wire, question_end = self._encode()
        if max_size is not None and len(wire) > max_size:
            out = bytearray(wire[:question_end])
            arcount = 1 if self.edns_payload is not None else 0
            HEADER_STRUCT.pack_into(
                out,
                0,
                self.msg_id,
                self._header_flags() | FLAG_TC,
                len(self.questions),
                0,
                0,
                arcount,
            )
            if arcount:
                # OPT owns the root name: no compression state involved.
                out += self._opt_record().to_wire(None, 0)
            wire = bytes(out)
        return wire

    def _opt_record(self) -> ResourceRecord:
        """Synthesize the OPT pseudo-record for this message's EDNS state."""
        from .name import ROOT
        from .rdata import OPT

        return ResourceRecord(
            ROOT,
            RRType.OPT,
            self.edns_payload,  # type: ignore[arg-type]  # CLASS = payload
            0,
            OPT.encode_options(self.edns_options) if self.edns_options else OPT(),
        )

    def _header_flags(self) -> int:
        return (
            (self.flags & ~0x7800 & ~0x000F)
            | (int(self.opcode) << 11)
            | (int(self.rcode) & 0x000F)
        )

    def _encode(self) -> tuple[bytes, int]:
        """Render the full message; returns (wire, end-of-question offset).

        One shared bytearray is grown in place: names, fixed fields, and
        rdata append directly via ``wire_into`` instead of concatenating
        per-record byte strings, and the section lists are walked without
        building a combined list first.
        """
        opt = self._opt_record() if self.edns_payload is not None else None
        out = bytearray(
            HEADER_STRUCT.pack(
                self.msg_id,
                self._header_flags(),
                len(self.questions),
                len(self.answers),
                len(self.authorities),
                len(self.additionals) + (1 if opt is not None else 0),
            )
        )
        if (
            len(self.questions) == 1
            and not self.answers
            and not self.authorities
            and not self.additionals
        ):
            # Query shape: one question, no records (OPT owns the root
            # name and never consults the compression dict).  The sole
            # name can never compress, so skip the dict and reuse the
            # name's cached uncompressed wire — byte-identical output.
            self.questions[0].wire_into(out, None)
            question_end = len(out)
            if opt is not None:
                opt.wire_into(out, None)
            return bytes(out), question_end
        compress: dict[Name, int] = {}
        for question in self.questions:
            question.wire_into(out, compress)
        question_end = len(out)
        for record in self.answers:
            record.wire_into(out, compress)
        for record in self.authorities:
            record.wire_into(out, compress)
        for record in self.additionals:
            record.wire_into(out, compress)
        if opt is not None:
            opt.wire_into(out, compress)
        return bytes(out), question_end

    @classmethod
    def from_wire(cls, wire: bytes) -> "Message":
        if len(wire) < HEADER_STRUCT.size:
            raise TruncatedMessageError("message shorter than header")
        msg_id, flags, qdcount, ancount, nscount, arcount = HEADER_STRUCT.unpack_from(wire)
        opcode = OPCODE_BY_CODE.get((flags >> 11) & 0xF)
        if opcode is None:
            opcode = Opcode((flags >> 11) & 0xF)  # raise as before
        rcode = RCODE_BY_CODE.get(flags & 0xF)
        if rcode is None:
            rcode = Rcode(flags & 0xF)  # raise as before
        # Keep AA/TC/RD/RA/AD/CD bits; opcode and rcode live in fields.
        message = cls(
            msg_id=msg_id,
            flags=flags
            & (FLAG_QR | FLAG_AA | FLAG_TC | FLAG_RD | FLAG_RA | FLAG_AD | FLAG_CD),
            opcode=opcode,
            rcode=rcode,
        )
        cursor = HEADER_STRUCT.size
        # One decode memo per message: compression pointers back to an
        # already-decoded owner name reuse that Name (and its cached hash).
        memo: dict[int, tuple[Name, int]] = {}
        for _ in range(qdcount):
            question, cursor = Question.from_wire(wire, cursor, memo)
            message.questions.append(question)
        for count, section in (
            (ancount, message.answers),
            (nscount, message.authorities),
            (arcount, message.additionals),
        ):
            for _ in range(count):
                record, cursor = ResourceRecord.from_wire(wire, cursor, memo)
                section.append(record)
        # Absorb the OPT pseudo-record into EDNS state (RFC 6891 §6.1.1).
        if any(record.rrtype == RRType.OPT for record in message.additionals):
            for record in list(message.additionals):
                if record.rrtype == RRType.OPT:
                    message.edns_payload = int(record.rrclass)
                    decode = getattr(record.rdata, "decode_options", None)
                    if decode is not None:
                        message.edns_options = decode()
                    message.additionals.remove(record)
        return message

    def to_text(self) -> str:
        lines = [
            f";; id {self.msg_id} opcode {self.opcode.name} rcode {self.rcode.to_text()}"
            f" flags{' qr' if self.is_response else ''}{' aa' if self.authoritative else ''}"
            f"{' tc' if self.truncated else ''}{' rd' if self.recursion_desired else ''}"
            f"{' ra' if self.recursion_available else ''}",
            ";; QUESTION",
            *(f";{q.to_text()}" for q in self.questions),
        ]
        for title, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authorities),
            ("ADDITIONAL", self.additionals),
        ):
            if section:
                lines.append(f";; {title}")
                lines.extend(record.to_text() for record in section)
        return "\n".join(lines)


class ResponseDecodeMemo:
    """Memoizes decoded responses that repeat a known template shape.

    Authoritatives built on the response-template cache answer every
    probe query with bytes that differ only in the message id and the
    unique first label of the echoed question name.  The memo keys a
    decoded skeleton on every *other* byte of the wire — header flags
    and counts, the first label's length, the question suffix, and the
    entire post-question tail — and rebuilds a hit by swapping the
    caller's already-validated query name into the skeleton.

    Two wires with equal keys can only differ in the id bytes and the
    first label's content.  Any name whose decoding depends on an
    absolute offset shows that offset in the keyed bytes (pointers
    between tail names encode absolute targets, so a different label
    length can never alias a key), which pins the byte layout.  The one
    remaining hazard — a name decoded *through* the first label's
    content, e.g. a pointer into its interior — is ruled out per entry
    by a canary decode: the wire is re-decoded with a different label
    of the same length, and the entry is built only when the two
    decodes differ exactly in names equal to the query name.  Shapes
    that fail the canary (or embed the query name in rdata) fall back
    to a full decode forever.
    """

    __slots__ = ("_entries",)

    MAX_ENTRIES = 256

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple | None] = {}

    def decode(self, wire: bytes, qname: Name) -> Message:
        """Decode ``wire``, which is expected to echo ``qname``.

        Byte-equivalent to :meth:`Message.from_wire` whenever the wire's
        question section echoes ``qname`` exactly; falls back to a full
        decode otherwise (or for shapes the canary cannot certify).
        """
        qwire = qname.to_wire()
        split = 12 + len(qwire)
        if len(wire) <= split or wire[12:split] != qwire:
            return Message.from_wire(wire)
        first_len = qwire[0]
        key = (wire[2:12], first_len, qwire[1 + first_len :], wire[split:])
        entries = self._entries
        entry = entries.get(key, False)
        if entry is False:
            message = Message.from_wire(wire)
            if len(entries) < self.MAX_ENTRIES:
                entries[key] = self._build(wire, message, qname, first_len)
            return message
        if entry is None:
            return Message.from_wire(wire)
        flags, opcode, rcode, payload, options, qplan, applan, auplan, adplan = entry
        return Message(
            msg_id=(wire[0] << 8) | wire[1],
            flags=flags,
            opcode=opcode,
            rcode=rcode,
            questions=[
                Question(qname, q.rrtype, q.rrclass) if swap else q
                for q, swap in qplan
            ],
            answers=[
                ResourceRecord(qname, r.rrtype, r.rrclass, r.ttl, r.rdata)
                if swap
                else r
                for r, swap in applan
            ],
            authorities=[
                ResourceRecord(qname, r.rrtype, r.rrclass, r.ttl, r.rdata)
                if swap
                else r
                for r, swap in auplan
            ],
            additionals=[
                ResourceRecord(qname, r.rrtype, r.rrclass, r.ttl, r.rdata)
                if swap
                else r
                for r, swap in adplan
            ],
            edns_payload=payload,
            edns_options=list(options),
        )

    @staticmethod
    def _build(
        wire: bytes, message: Message, qname: Name, first_len: int
    ) -> tuple | None:
        """Certify a template entry via a canary decode, or return None."""
        labels = qname.labels
        if first_len == 0:
            # Root query name: there is no first label to vary, so the
            # canary cannot certify anything.  Fall back forever.
            return None
        canary_label = b"z" * first_len
        if canary_label == labels[0]:
            canary_label = b"y" * first_len
        canary_wire = wire[:13] + canary_label + wire[13 + first_len :]
        try:
            canary = Message.from_wire(canary_wire)
        except Exception:
            return None
        if (
            message.flags != canary.flags
            or message.opcode != canary.opcode
            or message.rcode != canary.rcode
            or message.edns_payload != canary.edns_payload
            or message.edns_options != canary.edns_options
        ):
            return None
        canary_labels = (canary_label,) + labels[1:]

        def plan(real_section, canary_section, is_question):
            if len(real_section) != len(canary_section):
                return None
            out = []
            for a, b in zip(real_section, canary_section):
                if a.rrtype != b.rrtype or a.rrclass != b.rrclass:
                    return None
                if not is_question and (a.ttl != b.ttl or a.rdata != b.rdata):
                    return None
                a_labels = a.name.labels
                if a_labels == b.name.labels:
                    # Name spelled in (or pointing into) the keyed bytes:
                    # constant across hits, reuse the decoded object.
                    out.append((a, False))
                elif a_labels == labels and b.name.labels == canary_labels:
                    # Name tracks the question: swap in the live qname.
                    out.append((a, True))
                else:
                    return None
            return tuple(out)

        plans = []
        for real_section, canary_section, is_question in (
            (message.questions, canary.questions, True),
            (message.answers, canary.answers, False),
            (message.authorities, canary.authorities, False),
            (message.additionals, canary.additionals, False),
        ):
            section_plan = plan(real_section, canary_section, is_question)
            if section_plan is None:
                return None
            plans.append(section_plan)
        return (
            message.flags,
            message.opcode,
            message.rcode,
            message.edns_payload,
            tuple(message.edns_options),
            *plans,
        )
