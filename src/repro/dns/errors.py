"""Exception hierarchy for the DNS substrate.

Every error raised by :mod:`repro.dns` derives from :class:`DnsError`, so
callers can catch protocol problems without masking unrelated bugs.
"""

from __future__ import annotations


class DnsError(Exception):
    """Base class for all DNS protocol errors."""


class NameError_(DnsError):
    """A domain name is syntactically invalid (label/name length, bad escape)."""


class WireFormatError(DnsError):
    """A DNS message could not be decoded from wire format."""


class TruncatedMessageError(WireFormatError):
    """The wire message ended before a field was complete."""


class CompressionLoopError(WireFormatError):
    """Compression pointers in a wire message form a loop."""


class BadPointerError(WireFormatError):
    """A compression pointer points forward or out of bounds."""


class UnknownRdataTypeError(DnsError):
    """An RDATA type has no registered implementation and no raw fallback."""


class ZoneError(DnsError):
    """A zone is malformed (missing SOA, out-of-zone records, ...)."""


class ZoneFileSyntaxError(ZoneError):
    """A master (zone) file could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
