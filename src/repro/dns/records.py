"""Resource records and RRsets."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Iterator

from .errors import TruncatedMessageError
from .name import Name
from .rdata import Rdata, parse_rdata
from .types import RRCLASS_BY_CODE, RRTYPE_BY_CODE, RRClass, RRType

_RR_FIXED_STRUCT = struct.Struct("!HHI")
_RR_HEADER_STRUCT = struct.Struct("!HHIH")
_RDLENGTH_STRUCT = struct.Struct("!H")


@dataclass(frozen=True)
class ResourceRecord:
    """One resource record: owner name, type, class, TTL, and RDATA."""

    name: Name
    rrtype: RRType
    rrclass: RRClass
    ttl: int
    rdata: Rdata

    def to_wire(self, compress: dict[Name, int] | None = None, offset: int = 0) -> bytes:
        out = bytearray(self.name.to_wire(compress, offset))
        out += _RR_FIXED_STRUCT.pack(int(self.rrtype), int(self.rrclass), self.ttl)
        rdata_offset = offset + len(out) + 2  # after the RDLENGTH field
        rdata = self.rdata.to_wire(compress, rdata_offset)
        out += _RDLENGTH_STRUCT.pack(len(rdata))
        out += rdata
        return bytes(out)

    def wire_into(
        self, out: bytearray, compress: dict[Name, int] | None = None
    ) -> None:
        """Append this record to a whole-message buffer (fast path)."""
        self.name.wire_into(out, compress)
        rdata = self.rdata.to_wire(compress, len(out) + 10)  # after RDLENGTH
        out += _RR_HEADER_STRUCT.pack(
            int(self.rrtype), int(self.rrclass), self.ttl, len(rdata)
        )
        out += rdata

    @classmethod
    def from_wire(
        cls, wire: bytes, offset: int, _memo: dict | None = None
    ) -> tuple["ResourceRecord", int]:
        name, cursor = Name.from_wire(wire, offset, _memo)
        if cursor + 10 > len(wire):
            raise TruncatedMessageError("record header truncated")
        type_code, class_code, ttl, rdlength = _RR_HEADER_STRUCT.unpack_from(wire, cursor)
        cursor += 10
        if cursor + rdlength > len(wire):
            raise TruncatedMessageError("rdata truncated")
        rdata = parse_rdata(type_code, wire, cursor, rdlength)
        cursor += rdlength
        rrtype = RRTYPE_BY_CODE.get(type_code, type_code)
        rrclass = RRCLASS_BY_CODE.get(class_code, class_code)
        return cls(name, rrtype, rrclass, ttl, rdata), cursor

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        return replace(self, ttl=ttl)

    def to_text(self) -> str:
        rrtype = self.rrtype.to_text() if isinstance(self.rrtype, RRType) else f"TYPE{self.rrtype}"
        rrclass = self.rrclass.to_text() if isinstance(self.rrclass, RRClass) else f"CLASS{self.rrclass}"
        return f"{self.name.to_text()} {self.ttl} {rrclass} {rrtype} {self.rdata.to_text()}"


@dataclass
class RRset:
    """All records sharing (name, type, class); the unit of DNS answers."""

    name: Name
    rrtype: RRType
    rrclass: RRClass
    ttl: int
    rdatas: list[Rdata] = field(default_factory=list)

    def add(self, rdata: Rdata, ttl: int | None = None) -> None:
        """Add one RDATA; the RRset TTL is the minimum of member TTLs."""
        if ttl is not None:
            self.ttl = min(self.ttl, ttl) if self.rdatas else ttl
        if rdata not in self.rdatas:
            self.rdatas.append(rdata)

    def records(self) -> list[ResourceRecord]:
        return [
            ResourceRecord(self.name, self.rrtype, self.rrclass, self.ttl, rdata)
            for rdata in self.rdatas
        ]

    def __iter__(self) -> Iterator[Rdata]:
        return iter(self.rdatas)

    def __len__(self) -> int:
        return len(self.rdatas)

    def __bool__(self) -> bool:
        return bool(self.rdatas)

    @classmethod
    def from_records(cls, records: list[ResourceRecord]) -> "RRset":
        if not records:
            raise ValueError("cannot build an RRset from zero records")
        first = records[0]
        rrset = cls(first.name, first.rrtype, first.rrclass, first.ttl)
        for record in records:
            if (record.name, record.rrtype, record.rrclass) != (
                first.name, first.rrtype, first.rrclass,
            ):
                raise ValueError("records do not share (name, type, class)")
            rrset.add(record.rdata, record.ttl)
        return rrset


def group_rrsets(records: list[ResourceRecord]) -> list[RRset]:
    """Group a record list into RRsets, preserving first-seen order."""
    groups: dict[tuple, RRset] = {}
    for record in records:
        key = (record.name, record.rrtype, record.rrclass)
        rrset = groups.get(key)
        if rrset is None:
            rrset = RRset(record.name, record.rrtype, record.rrclass, record.ttl)
            groups[key] = rrset
        rrset.add(record.rdata, record.ttl)
    return list(groups.values())
