"""Real-socket UDP transport for the authoritative engine.

Used by integration tests and the quickstart example to show the DNS
substrate speaking actual wire format over the loopback interface.
"""

from __future__ import annotations

import socket
import threading

from ..telemetry.clock import DEFAULT_CLOCK, Clock
from .message import Message
from .name import Name
from .server import AuthoritativeServer
from .types import RRClass, RRType


class UdpAuthoritativeServer:
    """Serve an :class:`AuthoritativeServer` over a real UDP socket.

    Runs a background thread; use as a context manager::

        with UdpAuthoritativeServer(engine, host="127.0.0.1") as server:
            answer = query_udp(server.address, "example.nl.", RRType.TXT)

    Query-log timestamps come from the injectable ``clock`` (monotonic
    by default, shared with the TCP transport), not ``time.time()``.
    """

    def __init__(
        self,
        engine: AuthoritativeServer,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Clock = DEFAULT_CLOCK,
    ):
        self.engine = engine
        self.clock = clock
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((host, port))
        self._sock.settimeout(0.1)
        self.address: tuple[str, int] = self._sock.getsockname()
        self._running = False
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._running = True
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._sock.close()

    def _serve(self) -> None:
        while self._running:
            try:
                wire, client = self._sock.recvfrom(65535)
            except socket.timeout:
                continue
            except OSError:
                break
            response = self.engine.handle_wire(
                wire, client=f"{client[0]}:{client[1]}", now=self.clock.now()
            )
            if response is not None:
                try:
                    self._sock.sendto(response, client)
                except OSError:
                    break

    def __enter__(self) -> "UdpAuthoritativeServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def query_udp(
    address: tuple[str, int],
    qname: Name | str,
    qtype: RRType,
    rrclass: RRClass = RRClass.IN,
    timeout: float = 2.0,
    msg_id: int = 1,
    clock: Clock = DEFAULT_CLOCK,
) -> Message:
    """Send one UDP query and wait for the matching response.

    The receive deadline runs on the injectable ``clock`` — the same one
    the server side stamps its query log with — so tests can drive the
    timeout deterministically instead of racing ``time.monotonic()``.
    """
    query = Message.make_query(qname, qtype, rrclass, msg_id=msg_id)
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
        sock.settimeout(timeout)
        sock.sendto(query.to_wire(), address)
        deadline = clock.now() + timeout
        while True:
            remaining = deadline - clock.now()
            if remaining <= 0:
                raise TimeoutError(f"no response from {address}")
            sock.settimeout(remaining)
            wire, _ = sock.recvfrom(65535)
            response = Message.from_wire(wire)
            if response.msg_id == msg_id:
                return response
