"""Zone transfer (AXFR, RFC 5936) and secondary-zone maintenance.

Authoritative operators replicate zones from a primary to secondaries;
the paper's NS sets are exactly such replica groups.  AXFR runs over
TCP: the answer stream starts and ends with the zone's SOA, with every
other record in between.
"""

from __future__ import annotations

import socket

from .errors import ZoneError
from .message import Message
from .name import Name
from .records import ResourceRecord
from .server import AuthoritativeServer
from .tcp import read_tcp_message, write_tcp_message
from .types import Opcode, Rcode, RRClass, RRType
from .zone import Zone

AXFR_TYPE_CODE = 252


def build_axfr_response(query: Message, zone: Zone) -> Message:
    """The full AXFR answer: SOA, all other records, SOA again."""
    response = query.make_response()
    response.authoritative = True
    soa_rrset = zone.soa
    if soa_rrset is None:
        raise ZoneError(f"zone {zone.origin} has no SOA; cannot transfer")
    soa_records = soa_rrset.records()
    response.answers.extend(soa_records)
    for rrset in zone.rrsets():
        if rrset.rrtype == RRType.SOA:
            continue
        response.answers.extend(rrset.records())
    response.answers.extend(soa_records)
    return response


def handle_axfr(engine: AuthoritativeServer, query: Message) -> Message:
    """Process one AXFR query against an engine's zones."""
    response = query.make_response()
    if query.opcode != Opcode.QUERY or len(query.questions) != 1:
        response.rcode = Rcode.FORMERR
        return response
    question = query.questions[0]
    zone = engine.find_zone(question.name)
    if zone is None or zone.origin != question.name:
        response.rcode = Rcode.REFUSED  # transfers only at zone apexes
        return response
    return build_axfr_response(query, zone)


def request_axfr(
    address: tuple[str, int],
    origin: Name | str,
    timeout: float = 5.0,
    msg_id: int = 1,
) -> Zone:
    """Transfer a zone from a primary over TCP; returns the new Zone."""
    if isinstance(origin, str):
        origin = Name.from_text(origin)
    query = Message(msg_id=msg_id)
    from .message import Question

    query.questions.append(Question(origin, AXFR_TYPE_CODE, RRClass.IN))  # type: ignore[arg-type]
    with socket.create_connection(address, timeout=timeout) as sock:
        write_tcp_message(sock, query.to_wire())
        wire = read_tcp_message(sock)
    if wire is None:
        raise ConnectionError(f"no AXFR response from {address}")
    response = Message.from_wire(wire)
    if response.rcode != Rcode.NOERROR:
        raise ZoneError(f"AXFR refused: {response.rcode.to_text()}")
    return zone_from_axfr(origin, response.answers)


def zone_from_axfr(origin: Name, records: list[ResourceRecord]) -> Zone:
    """Validate the SOA framing and materialize the transferred zone."""
    if len(records) < 2:
        raise ZoneError("AXFR stream too short")
    first, last = records[0], records[-1]
    if first.rrtype != RRType.SOA or last.rrtype != RRType.SOA:
        raise ZoneError("AXFR stream not SOA-framed")
    if first.rdata != last.rdata:
        raise ZoneError("AXFR begins and ends with different SOAs")
    zone = Zone(origin)
    for record in records[:-1]:  # drop the trailing SOA duplicate
        zone.add_record(record)
    return zone


class SecondaryZone:
    """A secondary's view of a zone: transfer, serve, refresh.

    Minimal replica logic: :meth:`refresh` re-transfers when the
    primary's serial is newer (compared via an SOA query).
    """

    def __init__(self, origin: Name | str, primary: tuple[str, int]):
        self.origin = Name.from_text(origin) if isinstance(origin, str) else origin
        self.primary = primary
        self.zone: Zone | None = None

    @property
    def serial(self) -> int | None:
        if self.zone is None or self.zone.soa is None:
            return None
        return self.zone.soa.rdatas[0].serial

    def transfer(self) -> Zone:
        self.zone = request_axfr(self.primary, self.origin)
        return self.zone

    def refresh(self) -> bool:
        """Transfer if the primary holds a newer serial; True if updated."""
        from .tcp import query_tcp

        response = query_tcp(self.primary, self.origin, RRType.SOA)
        primary_serial = None
        for record in response.answers:
            if record.rrtype == RRType.SOA:
                primary_serial = record.rdata.serial
        if primary_serial is None:
            raise ZoneError("primary returned no SOA")
        if self.serial is not None and primary_serial <= self.serial:
            return False
        self.transfer()
        return True


def build_notify(origin: Name | str, serial: int | None = None, msg_id: int = 1) -> Message:
    """An RFC 1996 NOTIFY message announcing a zone change."""
    from .message import Question

    if isinstance(origin, str):
        origin = Name.from_text(origin)
    notify = Message(msg_id=msg_id, opcode=Opcode.NOTIFY)
    notify.questions.append(Question(origin, RRType.SOA, RRClass.IN))
    notify.authoritative = True
    return notify


class NotifyReceiver:
    """Secondary-side NOTIFY handling: acknowledge, then refresh.

    Wire this into a transport by calling :meth:`handle` for messages
    with opcode NOTIFY; it answers the NOTIFY and kicks the secondary's
    SOA-serial-driven refresh.
    """

    def __init__(self, secondaries: list[SecondaryZone]):
        self._by_origin = {secondary.origin: secondary for secondary in secondaries}
        self.notifies_received = 0
        self.refreshes_triggered = 0

    def handle(self, notify: Message) -> Message:
        response = notify.make_response()
        if notify.opcode != Opcode.NOTIFY or len(notify.questions) != 1:
            response.rcode = Rcode.FORMERR
            return response
        self.notifies_received += 1
        origin = notify.questions[0].name
        secondary = self._by_origin.get(origin)
        if secondary is None:
            response.rcode = Rcode.REFUSED
            return response
        if secondary.refresh():
            self.refreshes_triggered += 1
        return response
