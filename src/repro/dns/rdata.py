"""RDATA implementations for the record types the reproduction needs.

Each RDATA class knows its wire encoding, presentation format, and how to
parse both.  Unknown types fall back to :class:`GenericRdata`, which
round-trips raw bytes (RFC 3597 style).
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass
from typing import ClassVar

from .errors import TruncatedMessageError, WireFormatError
from .name import Name
from .types import RRType

_RDATA_REGISTRY: dict[int, type["Rdata"]] = {}


def register(rrtype: RRType):
    """Class decorator: bind an Rdata class to its RR type code."""

    def wrap(cls: type["Rdata"]) -> type["Rdata"]:
        cls.rrtype = rrtype
        _RDATA_REGISTRY[int(rrtype)] = cls
        return cls

    return wrap


class Rdata:
    """Base class for record data."""

    rrtype: ClassVar[RRType]

    def to_wire(self, compress: dict[Name, int] | None = None, offset: int = 0) -> bytes:
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "Rdata":
        raise NotImplementedError

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "Rdata":
        raise NotImplementedError


def parse_rdata(rrtype: int, wire: bytes, offset: int, rdlength: int) -> Rdata:
    """Decode RDATA of any type, falling back to a raw-bytes wrapper."""
    if offset + rdlength > len(wire):
        raise TruncatedMessageError("rdata runs past end of message")
    impl = _RDATA_REGISTRY.get(int(rrtype))
    if impl is None:
        return GenericRdata(int(rrtype), wire[offset : offset + rdlength])
    return impl.from_wire(wire, offset, rdlength)


def rdata_from_text(rrtype: RRType, tokens: list[str], origin: Name) -> Rdata:
    impl = _RDATA_REGISTRY.get(int(rrtype))
    if impl is None:
        raise WireFormatError(f"no text parser for type {rrtype}")
    return impl.from_text(tokens, origin)


def _name_from_token(token: str, origin: Name) -> Name:
    """Resolve a possibly-relative name token against ``origin``."""
    if token == "@":
        return origin
    if token.endswith("."):
        return Name.from_text(token)
    return Name.from_text(token).concatenate(origin)


@dataclass(frozen=True)
class GenericRdata(Rdata):
    """Raw RDATA for types without a dedicated implementation."""

    type_code: int
    data: bytes

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        return self.data

    def to_text(self) -> str:
        return f"\\# {len(self.data)} {self.data.hex()}"


@register(RRType.A)
@dataclass(frozen=True)
class A(Rdata):
    """IPv4 address record."""

    address: str

    def __post_init__(self):
        ipaddress.IPv4Address(self.address)  # validate

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        return ipaddress.IPv4Address(self.address).packed

    def to_text(self) -> str:
        return self.address

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "A":
        if rdlength != 4:
            raise WireFormatError(f"A rdata must be 4 bytes, got {rdlength}")
        return cls(str(ipaddress.IPv4Address(wire[offset : offset + 4])))

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "A":
        return cls(tokens[0])


@register(RRType.AAAA)
@dataclass(frozen=True)
class AAAA(Rdata):
    """IPv6 address record."""

    address: str

    def __post_init__(self):
        ipaddress.IPv6Address(self.address)

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        return ipaddress.IPv6Address(self.address).packed

    def to_text(self) -> str:
        return self.address

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "AAAA":
        if rdlength != 16:
            raise WireFormatError(f"AAAA rdata must be 16 bytes, got {rdlength}")
        return cls(str(ipaddress.IPv6Address(wire[offset : offset + 16])))

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "AAAA":
        return cls(tokens[0])


@register(RRType.NS)
@dataclass(frozen=True)
class NS(Rdata):
    """Name server record."""

    target: Name

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        return self.target.to_wire(compress, offset)

    def to_text(self) -> str:
        return self.target.to_text()

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "NS":
        name, _ = Name.from_wire(wire, offset)
        return cls(name)

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "NS":
        return cls(_name_from_token(tokens[0], origin))


@register(RRType.CNAME)
@dataclass(frozen=True)
class CNAME(Rdata):
    """Canonical-name alias record."""

    target: Name

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        return self.target.to_wire(compress, offset)

    def to_text(self) -> str:
        return self.target.to_text()

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "CNAME":
        name, _ = Name.from_wire(wire, offset)
        return cls(name)

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "CNAME":
        return cls(_name_from_token(tokens[0], origin))


@register(RRType.PTR)
@dataclass(frozen=True)
class PTR(Rdata):
    """Pointer record."""

    target: Name

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        return self.target.to_wire(compress, offset)

    def to_text(self) -> str:
        return self.target.to_text()

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "PTR":
        name, _ = Name.from_wire(wire, offset)
        return cls(name)

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "PTR":
        return cls(_name_from_token(tokens[0], origin))


@register(RRType.MX)
@dataclass(frozen=True)
class MX(Rdata):
    """Mail exchange record."""

    preference: int
    exchange: Name

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        prefix = struct.pack("!H", self.preference)
        return prefix + self.exchange.to_wire(compress, offset + 2)

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange.to_text()}"

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "MX":
        if rdlength < 3:
            raise WireFormatError("MX rdata too short")
        (preference,) = struct.unpack_from("!H", wire, offset)
        exchange, _ = Name.from_wire(wire, offset + 2)
        return cls(preference, exchange)

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "MX":
        return cls(int(tokens[0]), _name_from_token(tokens[1], origin))


@register(RRType.TXT)
@dataclass(frozen=True)
class TXT(Rdata):
    """Text record: one or more character-strings (each ≤255 bytes)."""

    strings: tuple[bytes, ...]

    def __post_init__(self):
        if not self.strings:
            raise WireFormatError("TXT needs at least one string")
        for s in self.strings:
            if len(s) > 255:
                raise WireFormatError("TXT character-string exceeds 255 bytes")

    @classmethod
    def from_value(cls, value: str) -> "TXT":
        """Build from a single python string, splitting at 255-byte chunks."""
        raw = value.encode()
        chunks = tuple(raw[i : i + 255] for i in range(0, len(raw), 255)) or (b"",)
        return cls(chunks)

    @property
    def value(self) -> str:
        """All character-strings joined and decoded (lossy-safe)."""
        return b"".join(self.strings).decode(errors="replace")

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        out = bytearray()
        for s in self.strings:
            out.append(len(s))
            out += s
        return bytes(out)

    def to_text(self) -> str:
        parts = []
        for s in self.strings:
            escaped = s.decode(errors="replace").replace("\\", "\\\\").replace('"', '\\"')
            parts.append(f'"{escaped}"')
        return " ".join(parts)

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "TXT":
        end = offset + rdlength
        strings: list[bytes] = []
        cursor = offset
        while cursor < end:
            length = wire[cursor]
            cursor += 1
            if cursor + length > end:
                raise TruncatedMessageError("TXT string runs past rdata")
            strings.append(wire[cursor : cursor + length])
            cursor += length
        if not strings:
            strings.append(b"")
        return cls(tuple(strings))

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "TXT":
        strings = []
        for token in tokens:
            if token.startswith('"') and token.endswith('"') and len(token) >= 2:
                token = token[1:-1]
            strings.append(token.replace('\\"', '"').replace("\\\\", "\\").encode())
        return cls(tuple(strings))


@register(RRType.SOA)
@dataclass(frozen=True)
class SOA(Rdata):
    """Start-of-authority record."""

    mname: Name
    rname: Name
    serial: int
    refresh: int
    retry: int
    expire: int
    minimum: int

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        out = bytearray(self.mname.to_wire(compress, offset))
        out += self.rname.to_wire(compress, offset + len(out))
        out += struct.pack(
            "!IIIII", self.serial, self.refresh, self.retry, self.expire, self.minimum
        )
        return bytes(out)

    def to_text(self) -> str:
        return (
            f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "SOA":
        mname, cursor = Name.from_wire(wire, offset)
        rname, cursor = Name.from_wire(wire, cursor)
        if cursor + 20 > len(wire):
            raise TruncatedMessageError("SOA counters truncated")
        serial, refresh, retry, expire, minimum = struct.unpack_from("!IIIII", wire, cursor)
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "SOA":
        if len(tokens) != 7:
            raise WireFormatError(f"SOA needs 7 fields, got {len(tokens)}")
        return cls(
            _name_from_token(tokens[0], origin),
            _name_from_token(tokens[1], origin),
            int(tokens[2]),
            int(tokens[3]),
            int(tokens[4]),
            int(tokens[5]),
            int(tokens[6]),
        )


@register(RRType.SRV)
@dataclass(frozen=True)
class SRV(Rdata):
    """Service locator record."""

    priority: int
    weight: int
    port: int
    target: Name

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        prefix = struct.pack("!HHH", self.priority, self.weight, self.port)
        # RFC 2782: the SRV target must not be compressed.
        return prefix + self.target.to_wire(None)

    def to_text(self) -> str:
        return f"{self.priority} {self.weight} {self.port} {self.target.to_text()}"

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "SRV":
        if rdlength < 7:
            raise WireFormatError("SRV rdata too short")
        priority, weight, port = struct.unpack_from("!HHH", wire, offset)
        target, _ = Name.from_wire(wire, offset + 6)
        return cls(priority, weight, port, target)

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "SRV":
        return cls(
            int(tokens[0]), int(tokens[1]), int(tokens[2]),
            _name_from_token(tokens[3], origin),
        )


@register(RRType.OPT)
@dataclass(frozen=True)
class OPT(Rdata):
    """EDNS0 pseudo-record RDATA (RFC 6891): raw option bytes.

    The interesting EDNS fields (payload size, extended rcode, flags)
    live in the record's CLASS and TTL, handled by
    :class:`~repro.dns.message.Message`; the RDATA is the option list,
    which we keep opaque.
    """

    options: bytes = b""

    @classmethod
    def encode_options(cls, options: list[tuple[int, bytes]]) -> "OPT":
        """Build OPT RDATA from (option-code, payload) pairs."""
        out = bytearray()
        for code, payload in options:
            out += struct.pack("!HH", code, len(payload))
            out += payload
        return cls(bytes(out))

    def decode_options(self) -> list[tuple[int, bytes]]:
        """Parse the RDATA into (option-code, payload) pairs."""
        options: list[tuple[int, bytes]] = []
        cursor = 0
        data = self.options
        while cursor + 4 <= len(data):
            code, length = struct.unpack_from("!HH", data, cursor)
            cursor += 4
            if cursor + length > len(data):
                raise WireFormatError("EDNS option runs past OPT rdata")
            options.append((code, data[cursor : cursor + length]))
            cursor += length
        if cursor != len(data):
            raise WireFormatError("trailing bytes in OPT rdata")
        return options

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        return self.options

    def to_text(self) -> str:
        return f"\\# {len(self.options)} {self.options.hex()}" if self.options else "\\# 0"

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "OPT":
        return cls(wire[offset : offset + rdlength])

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "OPT":
        raise WireFormatError("OPT is a pseudo-record and cannot appear in zone files")


@register(RRType.CAA)
@dataclass(frozen=True)
class CAA(Rdata):
    """Certification Authority Authorization record (RFC 8659)."""

    flags: int
    tag: str
    value: str

    def __post_init__(self):
        if not 0 <= self.flags <= 255:
            raise WireFormatError(f"CAA flags {self.flags} out of range")
        if not self.tag or len(self.tag) > 255 or not self.tag.isalnum():
            raise WireFormatError(f"bad CAA tag {self.tag!r}")

    def to_wire(self, compress=None, offset: int = 0) -> bytes:
        tag = self.tag.encode()
        return bytes([self.flags, len(tag)]) + tag + self.value.encode()

    def to_text(self) -> str:
        return f'{self.flags} {self.tag} "{self.value}"'

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "CAA":
        if rdlength < 2:
            raise WireFormatError("CAA rdata too short")
        flags = wire[offset]
        tag_length = wire[offset + 1]
        if 2 + tag_length > rdlength:
            raise TruncatedMessageError("CAA tag runs past rdata")
        tag = wire[offset + 2 : offset + 2 + tag_length].decode()
        value = wire[offset + 2 + tag_length : offset + rdlength].decode()
        return cls(flags, tag, value)

    @classmethod
    def from_text(cls, tokens: list[str], origin: Name) -> "CAA":
        value = tokens[2]
        if value.startswith('"') and value.endswith('"') and len(value) >= 2:
            value = value[1:-1]
        return cls(int(tokens[0]), tokens[1], value)
