"""From-scratch DNS substrate: names, wire format, zones, authoritative engine."""

from .errors import (
    DnsError,
    NameError_,
    WireFormatError,
    ZoneError,
    ZoneFileSyntaxError,
)
from .message import Message, Question
from .name import ROOT, Name
from .rdata import (
    AAAA,
    CNAME,
    MX,
    NS,
    PTR,
    SOA,
    SRV,
    TXT,
    A,
    GenericRdata,
    Rdata,
)
from .records import ResourceRecord, RRset, group_rrsets
from .axfr import (
    NotifyReceiver,
    SecondaryZone,
    build_notify,
    request_axfr,
    zone_from_axfr,
)
from .rdata import CAA, OPT
from .rrl import ResponseRateLimiter, RrlAction
from .server import (
    DEFAULT_QUERY_LOG_MAX,
    AuthoritativeServer,
    BoundedQueryLog,
    QueryLogEntry,
    ServerStats,
)
from .tcp import (
    TcpAuthoritativeServer,
    query_tcp,
    query_with_tcp_fallback,
)
from .types import Opcode, Rcode, RRClass, RRType
from .udp import UdpAuthoritativeServer, query_udp
from .update import (
    UpdateHandler,
    UpdatePolicy,
    attach_update_handling,
    make_update,
)
from .zone import LookupResult, LookupStatus, Zone
from .zonefile import parse_zone_file, parse_zone_text, zone_to_text

__all__ = [
    "A",
    "AAAA",
    "AuthoritativeServer",
    "BoundedQueryLog",
    "CAA",
    "DEFAULT_QUERY_LOG_MAX",
    "CNAME",
    "DnsError",
    "GenericRdata",
    "LookupResult",
    "LookupStatus",
    "MX",
    "NotifyReceiver",
    "Message",
    "NS",
    "Name",
    "NameError_",
    "OPT",
    "Opcode",
    "PTR",
    "Question",
    "QueryLogEntry",
    "ROOT",
    "RRClass",
    "RRType",
    "RRset",
    "Rcode",
    "Rdata",
    "ResourceRecord",
    "ResponseRateLimiter",
    "RrlAction",
    "SOA",
    "SecondaryZone",
    "SRV",
    "ServerStats",
    "TXT",
    "TcpAuthoritativeServer",
    "UdpAuthoritativeServer",
    "UpdateHandler",
    "UpdatePolicy",
    "WireFormatError",
    "attach_update_handling",
    "build_notify",
    "make_update",
    "Zone",
    "ZoneError",
    "ZoneFileSyntaxError",
    "group_rrsets",
    "parse_zone_file",
    "parse_zone_text",
    "query_tcp",
    "query_udp",
    "query_with_tcp_fallback",
    "request_axfr",
    "zone_from_axfr",
    "zone_to_text",
]
