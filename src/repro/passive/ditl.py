"""DITL-style Root DNS traffic synthesis (§3.2, Figure 7 top).

The Root zone is served by 13 letters (a–m), each its own anycast
service with a very different footprint — from a couple of sites to
globally distributed networks.  The paper's DITL-2017 slice covers 10
letters (B, G and L were missing), and analyzes recursives sending at
least 250 queries in the hour.

The busy-recursive population at the Root skews toward large, long-lived
resolver farms with latency-driven selection (small CPE forwarders do
not hit the Root hundreds of times an hour — they sit behind those
farms).  ``ROOT_MIX`` encodes that skew; it is the generator knob that
makes the synthetic trace reproduce the paper's headline Figure 7 (top)
numbers: ~20 % of recursives on a single letter, ~60 % touching six or
more, and only a few percent touching all ten observed.
"""

from __future__ import annotations

from ..netsim.geo import PROBE_CITIES, Location
from .generator import GeneratorConfig, PassiveTraceGenerator, ServerSet
from .trace import Trace

ROOT_LETTERS = tuple("abcdefghijklm")
MISSING_LETTERS = ("b", "g", "l")  # absent from the paper's DITL slice
OBSERVED_LETTERS = tuple(x for x in ROOT_LETTERS if x not in MISSING_LETTERS)


def _cities(*codes: str) -> tuple[Location, ...]:
    return tuple(PROBE_CITIES[code] for code in codes)


#: Stylized per-letter anycast footprints: site counts and geography vary
#: the way the real letters' do (a couple of sites up to global meshes).
ROOT_LETTER_SITES: dict[str, tuple[Location, ...]] = {
    "a": _cities("NYC", "LAX", "FRAC", "TYO", "LON", "SIN"),
    "b": _cities("LAX", "MIA"),
    "c": _cities("NYC", "CHI", "LON", "FRAC", "MAD", "TYO"),
    "d": _cities("NYC", "LON", "AMS", "SIN", "SAO", "JNB", "SYDC", "TYO",
                 "CHI", "DFW", "PAR", "STO", "BOM", "HKG", "MEX", "WAW"),
    "e": _cities("LAX", "NYC", "AMS", "TYO", "SIN", "LON", "FRAC", "SEA",
                 "BUE", "NBO", "AKL", "DEL"),
    "f": _cities("SEA", "YYZ", "AMS", "LON", "PRG", "TYO", "HKG", "SAO",
                 "JNB", "SYDC", "DXB", "MAD"),
    "g": _cities("DFW", "CHI", "FRAC", "SEL"),
    "h": _cities("NYC", "CHI"),
    "i": _cities("STO", "LON", "AMS", "HEL", "TYO", "SIN", "JNB", "MIA",
                 "SYDC", "HKG", "ZRH", "WAW"),
    "j": _cities("NYC", "LAX", "LON", "AMS", "STO", "TYO", "SIN", "SAO",
                 "SYDC", "BOM", "SEL", "MIA", "VIE", "PRG", "DUBC", "CAI",
                 "NBO", "MEX", "SCL", "AKL"),
    "k": _cities("AMS", "LON", "FRAC", "TYO", "DEL", "DXB", "MIA", "NBO",
                 "BUD", "ATH", "MOW", "SIN"),
    "l": _cities("LAX", "MIA", "AMS", "FRAC", "SIN", "TYO", "SYDC", "JNB",
                 "SAO", "BOM", "LON", "PRG", "WAW", "SEL", "HKG", "YYZ",
                 "SEA", "MAD", "ROM", "STO", "CAI", "SCL", "AKL", "DEL"),
    "m": _cities("TYO", "SEL", "PAR", "SEA", "HKG", "SIN", "NYC"),
}

#: Resolver mix of Root-busy recursives (see module docstring).
ROOT_MIX: dict[str, float] = {
    "bind": 0.54,
    "powerdns": 0.12,
    "windows": 0.02,
    "sticky": 0.20,
    "unbound": 0.05,
    "random": 0.05,
    "roundrobin": 0.02,
}

#: Root-scale overrides: SRTT decay is much slower relative to query
#: volume (letters are re-probed on ADB refresh cycles, not per burst),
#: and PowerDNS speed-tests are a smaller fraction of its traffic.
ROOT_SELECTOR_OVERRIDES: dict[str, dict] = {
    "bind": {"decay_factor": 0.999},
    "powerdns": {"explore_probability": 1.0 / 32.0},
}

#: Fraction of each letter's anycast sites present in the capture: DITL
#: never covers every instance (B, G and L are missing entirely; other
#: letters contribute only part of their sites).
ROOT_CAPTURE_COVERAGE = 0.75


def root_server_set() -> ServerSet:
    return ServerSet(
        zone="root",
        sites_by_server=dict(ROOT_LETTER_SITES),
        observed=OBSERVED_LETTERS,
    )


def generate_ditl_trace(
    num_recursives: int = 400,
    seed: int = 0,
    mean_queries_per_hour: float = 400.0,
    **config_overrides,
) -> Trace:
    """A one-hour DITL-like Root capture over the 10 observed letters."""
    config_overrides.setdefault("peering_sigma", 1.0)
    config_overrides.setdefault("capture_coverage", ROOT_CAPTURE_COVERAGE)
    config = GeneratorConfig(
        num_recursives=num_recursives,
        seed=seed,
        mean_queries_per_hour=mean_queries_per_hour,
        resolver_mix=ROOT_MIX,
        selector_overrides=ROOT_SELECTOR_OVERRIDES,
        **config_overrides,
    )
    return PassiveTraceGenerator(root_server_set(), config).generate()
