"""Passive trace format: what a DITL / ENTRADA capture gives the analyst.

A trace is a flat list of per-query records (timestamp, recursive
address, which server was queried).  Readers/writers use JSON Lines so
synthetic traces can be stored and re-analyzed like the paper's
datasets.  No cold-cache control and no RTT data — exactly the
limitations the paper notes for its passive datasets (§3.2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class TraceRecord:
    """One captured query."""

    timestamp: float
    recursive: str      # recursive resolver source address
    server_id: str      # which authoritative (root letter / NS name)
    qname: str = ""
    qtype: str = "A"


@dataclass
class Trace:
    """A capture: records plus the set of servers the capture covers."""

    observed_servers: tuple[str, ...]
    records: list[TraceRecord] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.records)

    def recursive_count(self) -> int:
        return len({record.recursive for record in self.records})

    def queries_by_recursive(self) -> dict[str, dict[str, int]]:
        """recursive → {server_id: count}: the Figure 7 input shape."""
        table: dict[str, dict[str, int]] = {}
        for record in self.records:
            counts = table.setdefault(record.recursive, {})
            counts[record.server_id] = counts.get(record.server_id, 0) + 1
        return table

    def filter_window(self, start: float, end: float) -> "Trace":
        """Records with start <= timestamp < end (the paper's 1-h slice)."""
        return Trace(
            observed_servers=self.observed_servers,
            records=[r for r in self.records if start <= r.timestamp < end],
        )


def save_trace(trace: Trace, path: str | Path) -> int:
    path = Path(path)
    with path.open("w") as fh:
        fh.write(
            json.dumps(
                {"kind": "passive_trace", "observed": list(trace.observed_servers)}
            )
            + "\n"
        )
        for record in trace.records:
            fh.write(
                json.dumps(
                    {
                        "t": record.timestamp,
                        "src": record.recursive,
                        "srv": record.server_id,
                        "qname": record.qname,
                        "qtype": record.qtype,
                    }
                )
                + "\n"
            )
    return len(trace.records)


def load_trace(path: str | Path) -> Trace:
    path = Path(path)
    with path.open() as fh:
        header = json.loads(fh.readline())
        if header.get("kind") != "passive_trace":
            raise ValueError(f"{path} is not a passive-trace file")
        trace = Trace(observed_servers=tuple(header["observed"]))
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            trace.records.append(
                TraceRecord(
                    timestamp=row["t"],
                    recursive=row["src"],
                    server_id=row["srv"],
                    qname=row.get("qname", ""),
                    qtype=row.get("qtype", "A"),
                )
            )
    return trace
