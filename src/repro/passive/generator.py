"""Synthetic production-traffic generator behind the Figure 7 analyses.

Simulates a population of long-running recursive resolvers querying a
fixed server set (root letters or TLD NSes).  Each recursive reuses the
*same* selection and infrastructure-cache code as the testbed
experiments; what differs from §3.1 is exactly what differs in the
paper's passive data: caches are warm (a warm-up phase precedes the
capture window), query rates are the recursives' own (heavy-tailed), and
only a subset of servers is observed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..netsim.anycast import AnycastGroup, AnycastSite
from ..netsim.geo import ATLAS_CONTINENT_WEIGHTS, Continent, Location, cities_by_continent
from ..netsim.latency import LatencyModel
from ..resolvers.infracache import InfrastructureCache
from ..resolvers.population import INFRA_TTL_S, ResolverPopulation
from .trace import Trace, TraceRecord


@dataclass(frozen=True)
class ServerSet:
    """The authoritative set of a production zone (e.g. the 13 root letters)."""

    zone: str
    sites_by_server: dict[str, tuple[Location, ...]]  # server_id -> its sites
    observed: tuple[str, ...]                          # servers with captures

    def __post_init__(self):
        missing = set(self.observed) - set(self.sites_by_server)
        if missing:
            raise ValueError(f"observed servers not in set: {sorted(missing)}")

    @property
    def server_ids(self) -> list[str]:
        return list(self.sites_by_server)


@dataclass
class GeneratorConfig:
    """Knobs of the synthetic capture."""

    num_recursives: int = 400
    warmup_s: float = 1800.0
    capture_s: float = 3600.0
    mean_queries_per_hour: float = 250.0
    rate_sigma: float = 1.0          # lognormal sigma of per-recursive rates
    seed: int = 0
    resolver_mix: dict[str, float] | None = None
    selector_overrides: dict[str, dict] | None = None
    continent_weights: dict[Continent, float] | None = None
    #: lognormal sigma of stable per-(recursive, server) path diversity:
    #: BGP peering makes the same anycast service fast for one network
    #: and slow for its neighbor.  0 disables.
    peering_sigma: float = 0.0
    #: probability that any given anycast *site* of an observed server is
    #: part of the capture.  DITL never covers every instance of every
    #: letter; queries landing on uncaptured sites are invisible.
    capture_coverage: float = 1.0
    #: diurnal traffic modulation: per-recursive query rates scale with
    #: local time of day (amplitude 0 disables).  The paper argues (§3.1)
    #: that selection is unlikely to be affected by diurnal factors — a
    #: testable claim here.
    diurnal_amplitude: float = 0.0
    #: UTC hour at which the capture window starts (paper: 12:00 UTC).
    capture_utc_hour: float = 12.0


class PassiveTraceGenerator:
    """Produces a :class:`Trace` for one :class:`ServerSet`."""

    def __init__(self, servers: ServerSet, config: GeneratorConfig | None = None):
        self.servers = servers
        self.config = config if config is not None else GeneratorConfig()
        root = random.Random(self.config.seed)
        self.rng = random.Random(root.randrange(2**63))
        self.latency = LatencyModel(rng=random.Random(root.randrange(2**63)))
        self.population = ResolverPopulation(
            self.config.resolver_mix,
            rng=random.Random(root.randrange(2**63)),
            selector_overrides=self.config.selector_overrides,
        )
        self._groups: dict[str, AnycastGroup] = {
            server_id: self._make_group(server_id, sites)
            for server_id, sites in servers.sites_by_server.items()
        }
        capture_rng = random.Random(root.randrange(2**63))
        self._captured_sites: dict[str, set[str]] = {}
        for server_id, sites in servers.sites_by_server.items():
            captured = {
                site.code
                for site in sites
                if capture_rng.random() < self.config.capture_coverage
            }
            if not captured:  # a capture of a server covers at least one site
                captured = {capture_rng.choice(sites).code}
            self._captured_sites[server_id] = captured

    def _make_group(
        self, server_id: str, sites: tuple[Location, ...]
    ) -> AnycastGroup:
        group = AnycastGroup(f"{self.servers.zone}-{server_id}")
        for site in sites:
            group.add_site(AnycastSite(site.code, site, lambda *a: None))
        return group

    def _recursive_location(self) -> Location:
        weights = dict(
            ATLAS_CONTINENT_WEIGHTS
            if self.config.continent_weights is None
            else self.config.continent_weights
        )
        continents = list(weights)
        continent = self.rng.choices(
            continents, weights=[weights[c] for c in continents], k=1
        )[0]
        return self.rng.choice(cities_by_continent(continent))

    def _base_rtts(self, location: Location, client_key: str) -> dict[str, float]:
        """Deterministic RTT per server via its anycast catchment, with
        stable per-(recursive, server) peering diversity on top."""
        rtts = {}
        for server_id, group in self._groups.items():
            site = group.catchment(location, client_key, self.latency)
            rtt = self.latency.base_rtt_ms(location.point, site.location.point)
            if self.config.peering_sigma > 0.0:
                draw = random.Random(f"{client_key}|{server_id}|peering")
                rtt *= math.exp(draw.gauss(0.0, self.config.peering_sigma))
            rtts[server_id] = rtt
        return rtts

    def generate(self) -> Trace:
        """Run warm-up plus capture; the trace covers observed servers only."""
        config = self.config
        server_ids = self.servers.server_ids
        records: list[TraceRecord] = []
        observed = set(self.servers.observed)

        for index in range(config.num_recursives):
            address = f"198.18.{index // 250}.{index % 250 + 1}"
            location = self._recursive_location()
            sample = self.population.sample()
            selector = sample.selector
            cache = InfrastructureCache(
                ttl_s=INFRA_TTL_S.get(sample.impl_name, 600.0)
            )
            rtts = self._base_rtts(location, address)
            # Whether this recursive's queries to a server are captured
            # depends on which site its (stable) catchment lands on.
            visible = {
                server_id: self._groups[server_id]
                .catchment(location, address, self.latency)
                .code
                in self._captured_sites[server_id]
                for server_id in server_ids
            }
            rate_per_s = (
                config.mean_queries_per_hour
                * math.exp(self.rng.gauss(0.0, config.rate_sigma))
                / 3600.0
            )
            if config.diurnal_amplitude > 0.0:
                # Local time from longitude; traffic peaks mid-afternoon.
                local_hour = (
                    config.capture_utc_hour + location.point.lon / 15.0
                ) % 24.0
                modulation = 1.0 + config.diurnal_amplitude * math.sin(
                    2.0 * math.pi * (local_hour - 9.0) / 24.0
                )
                rate_per_s *= max(0.05, modulation)
            now = -config.warmup_s
            end = config.capture_s
            while now < end:
                now += self.rng.expovariate(rate_per_s) if rate_per_s > 0 else end
                if now >= end:
                    break
                choice = selector.select(server_ids, cache, now)
                if self.latency.is_lost():
                    selector.on_timeout(choice, server_ids, cache, now)
                    continue
                rtt = rtts[choice] * math.exp(
                    self.rng.gauss(0.0, self.latency.params.jitter_sigma)
                )
                selector.on_response(choice, rtt, server_ids, cache, now)
                if now >= 0.0 and choice in observed and visible[choice]:
                    records.append(
                        TraceRecord(
                            timestamp=now,
                            recursive=address,
                            server_id=choice,
                            qname=f"q{len(records)}.{self.servers.zone}",
                        )
                    )
        records.sort(key=lambda record: record.timestamp)
        return Trace(observed_servers=self.servers.observed, records=records)
