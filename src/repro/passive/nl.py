""".nl ccTLD traffic synthesis (§3.2, Figure 7 bottom).

At the time of the paper, .nl ran 8 authoritatives: 5 unicast in the
Netherlands plus 3 anycast services with sites around the world; the
ENTRADA capture covers 4 of the 8.  TLD clients are the general resolver
population (unlike Root-busy farms), so the default mix applies — which
is why the paper sees the majority of recursives querying *all* observed
.nl authoritatives, with fewer single-NS recursives than at the Root.
"""

from __future__ import annotations

from ..netsim.geo import PROBE_CITIES, Location
from .generator import GeneratorConfig, PassiveTraceGenerator, ServerSet
from .trace import Trace


def _cities(*codes: str) -> tuple[Location, ...]:
    return tuple(PROBE_CITIES[code] for code in codes)


#: 5 unicast NSes in the Netherlands + 3 global anycast services.
NL_SERVER_SITES: dict[str, tuple[Location, ...]] = {
    "ns1.dns.nl": _cities("AMS"),
    "ns2.dns.nl": _cities("AMS"),
    "ns3.dns.nl": _cities("AMS"),
    "ns4.dns.nl": _cities("AMS"),
    "ns5.dns.nl": _cities("AMS"),
    "anyc1.dns.nl": _cities("AMS", "LON", "NYC", "TYO", "SYDC", "SAO", "JNB"),
    "anyc2.dns.nl": _cities("FRAC", "MIA", "SIN", "SCL", "SEA", "DXB"),
    "anyc3.dns.nl": _cities("LON", "CHI", "HKG", "BUE", "CAI", "MEL"),
}

#: The ENTRADA capture the paper uses covers 4 of the 8 authoritatives
#: (two unicast, two anycast here).
NL_OBSERVED: tuple[str, ...] = (
    "ns1.dns.nl",
    "ns3.dns.nl",
    "anyc1.dns.nl",
    "anyc2.dns.nl",
)


def nl_server_set() -> ServerSet:
    return ServerSet(
        zone="nl",
        sites_by_server=dict(NL_SERVER_SITES),
        observed=NL_OBSERVED,
    )


def generate_nl_trace(
    num_recursives: int = 400,
    seed: int = 0,
    mean_queries_per_hour: float = 400.0,
    **config_overrides,
) -> Trace:
    """A one-hour .nl capture over the 4 observed authoritatives."""
    config = GeneratorConfig(
        num_recursives=num_recursives,
        seed=seed,
        mean_queries_per_hour=mean_queries_per_hour,
        **config_overrides,
    )
    return PassiveTraceGenerator(nl_server_set(), config).generate()
