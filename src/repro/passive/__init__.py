"""Passive production traces: DITL-style Root and .nl ccTLD synthesis."""

from .ditl import (
    MISSING_LETTERS,
    OBSERVED_LETTERS,
    ROOT_LETTERS,
    ROOT_MIX,
    generate_ditl_trace,
    root_server_set,
)
from .generator import GeneratorConfig, PassiveTraceGenerator, ServerSet
from .nl import NL_OBSERVED, generate_nl_trace, nl_server_set
from .trace import Trace, TraceRecord, load_trace, save_trace

__all__ = [
    "GeneratorConfig",
    "MISSING_LETTERS",
    "NL_OBSERVED",
    "OBSERVED_LETTERS",
    "PassiveTraceGenerator",
    "ROOT_LETTERS",
    "ROOT_MIX",
    "ServerSet",
    "Trace",
    "TraceRecord",
    "generate_ditl_trace",
    "generate_nl_trace",
    "load_trace",
    "nl_server_set",
    "root_server_set",
    "save_trace",
]
