"""Production-trace analytics beyond Figure 7.

Root-traffic studies (Castro et al. [7]) report per-letter traffic
balance, query-rate distributions, and client concentration; these
helpers compute the same aggregates on any :class:`~repro.passive.trace.Trace`
so synthetic captures can be sanity-checked against published norms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.stats import quantile
from .trace import Trace


@dataclass(frozen=True)
class TrafficBalance:
    """Per-server share of all captured queries (Castro et al. style)."""

    shares: dict[str, float]

    @property
    def most_loaded(self) -> str:
        return max(self.shares, key=self.shares.get)

    @property
    def imbalance_ratio(self) -> float:
        """Busiest server's share over the quietest's (1.0 = even)."""
        values = [share for share in self.shares.values() if share > 0]
        if not values:
            return 1.0
        return max(values) / min(values)


def traffic_balance(trace: Trace) -> TrafficBalance:
    counts: dict[str, int] = {server: 0 for server in trace.observed_servers}
    for record in trace.records:
        counts[record.server_id] = counts.get(record.server_id, 0) + 1
    total = sum(counts.values())
    if total == 0:
        return TrafficBalance({server: 0.0 for server in counts})
    return TrafficBalance({server: n / total for server, n in counts.items()})


@dataclass(frozen=True)
class RateDistribution:
    """Distribution of per-recursive query rates in the capture window."""

    recursives: int
    total_queries: int
    median: float
    p90: float
    p99: float
    max: float

    @property
    def heavy_tailed(self) -> bool:
        """Top decile far above the median — true for real DNS traffic."""
        return self.median > 0 and self.p90 / self.median > 3.0


def rate_distribution(trace: Trace) -> RateDistribution:
    totals = [
        float(sum(counts.values()))
        for counts in trace.queries_by_recursive().values()
    ]
    if not totals:
        return RateDistribution(0, 0, 0.0, 0.0, 0.0, 0.0)
    return RateDistribution(
        recursives=len(totals),
        total_queries=int(sum(totals)),
        median=quantile(totals, 0.50),
        p90=quantile(totals, 0.90),
        p99=quantile(totals, 0.99),
        max=max(totals),
    )


@dataclass(frozen=True)
class ClientConcentration:
    """How concentrated the query volume is over recursives."""

    top_1pct_share: float
    top_10pct_share: float
    gini: float


def client_concentration(trace: Trace) -> ClientConcentration:
    totals = sorted(
        (sum(counts.values()) for counts in trace.queries_by_recursive().values()),
        reverse=True,
    )
    grand_total = sum(totals)
    if not totals or grand_total == 0:
        return ClientConcentration(0.0, 0.0, 0.0)
    top1 = max(1, len(totals) // 100)
    top10 = max(1, len(totals) // 10)
    top_1pct = sum(totals[:top1]) / grand_total
    top_10pct = sum(totals[:top10]) / grand_total
    # Gini over the (descending) totals.
    ascending = sorted(totals)
    cumulative = 0.0
    weighted = 0.0
    for index, value in enumerate(ascending, start=1):
        cumulative += value
        weighted += index * value
    n = len(ascending)
    gini = (2.0 * weighted) / (n * cumulative) - (n + 1.0) / n
    return ClientConcentration(top_1pct, top_10pct, gini)
