"""Anycast public resolver services (the 8.8.8.8 pattern, §3.1).

Some probes are configured with a public DNS service instead of their
ISP's resolver.  Such services are anycast: one well-known address,
many resolver instances worldwide, each with its *own* caches.  A probe
reaches the instance its BGP catchment selects — so two probes "using
the same resolver" may in fact hit different instances with different
latency maps, one of the interferences the paper notes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..dns.name import Name
from ..netsim.anycast import AnycastGroup, AnycastSite
from ..netsim.geo import PROBE_CITIES, Location
from ..netsim.network import SimNetwork
from ..seeding import default_rng, derive_rng
from ..resolvers.bind import BindSelector
from ..resolvers.resolver import RecursiveResolver
from .probes import Probe

#: default instance cities for a global public service
DEFAULT_INSTANCE_CITIES = ("AMS", "NYC", "SIN", "SYDC", "SAO", "JNB")


@dataclass
class PublicResolverService:
    """One anycast public-DNS service with per-site resolver instances."""

    address: str
    instances: dict[str, RecursiveResolver]
    _catchment_group: AnycastGroup

    @classmethod
    def build(
        cls,
        address: str,
        network: SimNetwork,
        instance_cities: tuple[str, ...] = DEFAULT_INSTANCE_CITIES,
        selector_factory=BindSelector,
        rng: random.Random | None = None,
    ) -> "PublicResolverService":
        # Per-service namespace: two services built without an rng (e.g.
        # 8.8.8.8 and 1.1.1.1) must not make identical instance draws.
        rng = rng if rng is not None else default_rng("atlas.public", address)
        seed = rng.getrandbits(63)
        instances: dict[str, RecursiveResolver] = {}
        group = AnycastGroup(f"public-{address}", suboptimal_rate=0.05)
        for index, code in enumerate(instance_cities):
            location: Location = PROBE_CITIES[code]
            resolver = RecursiveResolver(
                address,  # all instances share the well-known address
                location,
                network,
                selector_factory(rng=derive_rng(seed, "selector", code)),
                rng=derive_rng(seed, "resolver", code),
            )
            instances[code] = resolver
            group.add_site(AnycastSite(code, location, lambda *a: None))
        return cls(address=address, instances=instances, _catchment_group=group)

    def instance_for(self, probe: Probe, network: SimNetwork) -> RecursiveResolver:
        """The instance this probe's packets reach (stable catchment)."""
        site = self._catchment_group.catchment(
            probe.location, probe.address, network.latency
        )
        return self.instances[site.code]

    def add_stub_zone(self, origin: Name | str, addresses: list[str]) -> None:
        for resolver in self.instances.values():
            resolver.add_stub_zone(origin, addresses)

    @property
    def instance_count(self) -> int:
        return len(self.instances)
