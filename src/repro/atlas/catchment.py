"""Anycast catchment mapping with CHAOS-class queries (§3.1).

Classic anycast studies send ``CH TXT id.server.`` (or
``hostname.bind.``) to an anycast address from many vantage points; the
answer names the site the packet reached.  The paper points out the
catch: sent *through a recursive*, the CHAOS query is answered by the
recursive itself and never reaches the authoritative — which is why the
paper identifies sites with Internet-class TXT records instead.  Both
behaviors are reproducible here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dns.message import Message
from ..dns.name import Name
from ..dns.types import RRClass, RRType
from ..netsim.network import SimNetwork
from .probes import Probe

ID_SERVER = Name.from_text("id.server.")


@dataclass(frozen=True)
class CatchmentEntry:
    """One vantage point's catchment observation."""

    probe_id: int
    continent: str
    site: str            # "" when the query failed
    rtt_ms: float | None


@dataclass
class CatchmentReport:
    """Catchment of one anycast service address over a probe set."""

    service_address: str
    entries: list[CatchmentEntry] = field(default_factory=list)

    @property
    def observed(self) -> list[CatchmentEntry]:
        return [entry for entry in self.entries if entry.site]

    def site_shares(self) -> dict[str, float]:
        """Fraction of VPs landing on each site."""
        observed = self.observed
        if not observed:
            return {}
        shares: dict[str, float] = {}
        for entry in observed:
            shares[entry.site] = shares.get(entry.site, 0.0) + 1.0
        return {site: count / len(observed) for site, count in shares.items()}

    def median_rtt_ms(self, site: str) -> float:
        rtts = sorted(
            entry.rtt_ms
            for entry in self.observed
            if entry.site == site and entry.rtt_ms is not None
        )
        if not rtts:
            raise ValueError(f"no RTT samples for site {site}")
        return rtts[len(rtts) // 2]

    def suboptimal_fraction(self, network: SimNetwork, probes: list[Probe]) -> float:
        """Share of VPs not served by their lowest-RTT site.

        Needs the network to compute, per probe, which deployed site of
        the service would have been fastest.
        """
        by_id = {probe.probe_id: probe for probe in probes}
        group = network._anycast.get(self.service_address)
        if group is None:
            return 0.0
        suboptimal = 0
        observed = self.observed
        for entry in observed:
            probe = by_id[entry.probe_id]
            nearest = min(
                group.sites,
                key=lambda site: network.latency.base_rtt_ms(
                    probe.location.point, site.location.point
                ),
            )
            marker_site = entry.site.rsplit("-", 1)[-1]
            if marker_site != nearest.code:
                suboptimal += 1
        return suboptimal / len(observed) if observed else 0.0


def _site_from_txt(message: Message) -> str:
    for record in message.answers:
        value = getattr(record.rdata, "value", None)
        if value:
            return value
    return ""


def map_catchment(
    network: SimNetwork,
    service_address: str,
    probes: list[Probe],
    qname: Name = ID_SERVER,
    method: str = "chaos",
) -> CatchmentReport:
    """Map a service's catchment by direct queries from every probe.

    ``method="chaos"`` uses the classic ``CH TXT id.server.`` probe;
    ``method="nsid"`` uses the modern EDNS NSID option (RFC 5001) on an
    ordinary Internet-class query.  Both work here because the probe
    talks to the anycast address directly, so the site's answer is
    authentic.
    """
    if method not in ("chaos", "nsid"):
        raise ValueError(f"unknown catchment method {method!r}")
    report = CatchmentReport(service_address=service_address)
    for index, probe in enumerate(probes):
        if method == "chaos":
            query = Message.make_query(
                qname, RRType.TXT, rrclass=RRClass.CH,
                msg_id=(index % 0xFFFF) + 1, recursion_desired=False,
            )
        else:
            query = Message.make_query(
                qname, RRType.SOA, msg_id=(index % 0xFFFF) + 1,
                recursion_desired=False,
            ).request_nsid()
        trip = network.round_trip(
            probe.location, probe.address, service_address, query.to_wire()
        )
        site = ""
        if trip.response is not None:
            try:
                message = Message.from_wire(trip.response)
                if method == "chaos":
                    site = _site_from_txt(message)
                else:
                    site = (message.nsid or b"").decode(errors="replace")
            except Exception:
                site = ""
        report.entries.append(
            CatchmentEntry(
                probe_id=probe.probe_id,
                continent=probe.continent.value,
                site=site,
                rtt_ms=trip.rtt_ms,
            )
        )
    return report
