"""Vantage points: RIPE-Atlas-like probes.

The paper uses ~9,700 Atlas probes across ~3,300 ASes, heavily skewed
toward Europe, and treats each unique (probe id, recursive address) pair
as one vantage point.  :class:`ProbeGenerator` reproduces that
population shape deterministically from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netsim.geo import (
    ATLAS_CONTINENT_WEIGHTS,
    Continent,
    Location,
    cities_by_continent,
)
from ..seeding import derive_rng


@dataclass(frozen=True)
class Probe:
    """One vantage point host (the CL in the paper's Figure 1).

    ``ipv6_capable`` mirrors the paper's §3.1 population: 69 % of Atlas
    VPs had IPv4 connectivity only, so the IPv6 repeat of the experiment
    uses roughly a third of the probes.
    """

    probe_id: int
    location: Location
    asn: int
    address: str
    ipv6_capable: bool = False

    @property
    def continent(self) -> Continent:
        return self.location.continent


class ProbeGenerator:
    """Draws probes with the Atlas continent skew and AS clustering.

    Every probe's attributes come from a stream derived from ``seed``
    and the probe id alone — probe N is the same probe whether the
    population is generated whole or any subset of ids is regenerated
    in a shard worker.  ``rng`` is accepted for backward compatibility;
    when only an rng is given, the seed is drawn from it once.
    """

    def __init__(
        self,
        rng: random.Random | None = None,
        continent_weights: dict[Continent, float] | None = None,
        ases_per_continent: int = 550,
        ipv6_share: float = 0.31,
        seed: int | None = None,
    ):
        if seed is None:
            seed = (rng if rng is not None else random.Random(0)).getrandbits(63)
        self.seed = seed
        self.ipv6_share = ipv6_share
        self.weights = dict(
            ATLAS_CONTINENT_WEIGHTS if continent_weights is None else continent_weights
        )
        total = sum(self.weights.values())
        self.weights = {cont: w / total for cont, w in self.weights.items()}
        self._ases_per_continent = ases_per_continent
        # Disjoint AS number pools per continent, so AS → continent is
        # well defined (as it overwhelmingly is in practice).
        self._as_pools: dict[Continent, list[int]] = {}
        base = 1000
        for continent in Continent:
            self._as_pools[continent] = list(
                range(base, base + ases_per_continent)
            )
            base += ases_per_continent

    def generate(self, count: int, address_prefix: str = "172.16") -> list[Probe]:
        """Generate ``count`` probes; addresses are unique per probe."""
        return [
            self.generate_one(probe_id, address_prefix=address_prefix)
            for probe_id in range(count)
        ]

    def generate_one(
        self, probe_id: int, address_prefix: str = "172.16"
    ) -> Probe:
        """Probe ``probe_id``, identical no matter which ids co-generate."""
        rng = derive_rng(self.seed, "probe", probe_id)
        continents = list(self.weights)
        weights = [self.weights[c] for c in continents]
        continent = rng.choices(continents, weights=weights, k=1)[0]
        city = rng.choice(cities_by_continent(continent))
        asn = rng.choice(self._as_pools[continent])
        address = f"{address_prefix}.{probe_id // 250}.{probe_id % 250 + 1}"
        return Probe(
            probe_id, city, asn, address,
            ipv6_capable=rng.random() < self.ipv6_share,
        )


def continent_counts(probes: list[Probe]) -> dict[Continent, int]:
    counts: dict[Continent, int] = {continent: 0 for continent in Continent}
    for probe in probes:
        counts[probe.continent] += 1
    return counts
