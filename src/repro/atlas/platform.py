"""The measurement platform: vantage points querying through recursives.

A :class:`VantagePoint` is a (probe, recursive) pair — the unit of
analysis in the paper (§3.1).  :class:`AtlasPlatform` builds the
recursive resolvers for a probe set from a population mix, wires them to
the simulated network, and runs the periodic TXT measurement with
cache-busting unique labels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.store import (
    MeasurementRun,
    ObservationStore,
    QueryObservation,
)
from ..dns.name import Name
from ..dns.types import RRType
from ..netsim.events import EventScheduler
from ..netsim.geo import Continent, cities_by_continent
from ..netsim.network import SimNetwork
from ..resolvers.population import ResolverPopulation
from ..resolvers.resolver import RecursiveResolver
from ..seeding import derive_rng
from ..telemetry import NULL_TELEMETRY
from .probes import Probe

#: vp_id = probe_id * VPS_PER_PROBE + ordinal — derivable from the probe
#: alone, so shard workers assign the same ids the serial run would.
VPS_PER_PROBE = 2


@dataclass(frozen=True)
class VantagePoint:
    """One (probe, recursive) pair — a VP in the paper's terminology."""

    vp_id: int
    probe: Probe
    resolver: RecursiveResolver
    impl_name: str  # ground truth, invisible to the paper's methodology

    @property
    def continent(self) -> Continent:
        return self.probe.continent


class AtlasPlatform:
    """Builds vantage points and runs measurements against a deployment."""

    def __init__(
        self,
        network: SimNetwork,
        probes: list[Probe],
        population: ResolverPopulation,
        rng: random.Random | None = None,
        second_resolver_share: float = 0.12,
        remote_resolver_share: float = 0.20,
        resolver_sharing_share: float = 0.25,
        public_services: list | None = None,
        public_resolver_share: float = 0.0,
        telemetry=None,
        seed: int | None = None,
        resolver_options: dict | None = None,
    ):
        self.network = network
        self.probes = probes
        self.population = population
        if telemetry is None:
            telemetry = getattr(network, "telemetry", None)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Every stochastic decision derives from (seed, probe/vp path),
        # never from a shared sequential stream — this is what makes a
        # probe's vantage points identical whether the platform holds
        # the whole population or one shard of it.  ``rng`` remains as a
        # compatibility spelling: it contributes only the seed.
        if seed is None:
            seed = (rng if rng is not None else random.Random(0)).getrandbits(63)
        self.seed = seed
        self.rng = rng if rng is not None else derive_rng(seed, "platform.shared")
        self.second_resolver_share = second_resolver_share
        self.remote_resolver_share = remote_resolver_share
        self.resolver_sharing_share = resolver_sharing_share
        self.public_services = list(public_services or [])
        self.public_resolver_share = public_resolver_share
        if self.public_resolver_share > 0.0 and not self.public_services:
            raise ValueError("public_resolver_share needs public_services")
        #: extra RecursiveResolver kwargs applied to every ISP resolver
        #: (e.g. MaxFetch mitigations during adversarial campaigns).
        self.resolver_options = dict(resolver_options or {})
        #: compiled :class:`repro.netsim.adversary.AttackPlan` driving a
        #: botnet subset of VPs (None = benign campaign).
        self.attack_plan = None
        self.vantage_points: list[VantagePoint] = []
        self._resolver_by_as: dict[int, RecursiveResolver] = {}
        self._impl_by_resolver: dict[str, str] = {}

    # -- construction -------------------------------------------------------

    def _new_resolver(
        self, probe: Probe, ordinal: int, rng: random.Random
    ) -> tuple[RecursiveResolver, str]:
        """Create a recursive near the probe (ISP resolver model).

        Address, implementation draw, and internal streams all derive
        from (probe id, ordinal), so the resolver is bit-identical no
        matter how many other probes exist or which shard builds it.
        ``rng`` is the probe's decision stream (placement draws only).
        """
        sample = self.population.sample(
            rng=derive_rng(self.seed, "impl", probe.probe_id, ordinal)
        )
        location = probe.location
        if rng.random() < self.remote_resolver_share:
            # ISP resolver in another city on the same continent.
            location = rng.choice(cities_by_continent(probe.continent))
        address = (
            f"10.{53 + ordinal}.{probe.probe_id // 250}"
            f".{probe.probe_id % 250 + 1}"
        )
        resolver = RecursiveResolver(
            address,
            location,
            self.network,
            sample.selector,
            infra_ttl_s=sample.infra_ttl_s,
            rng=derive_rng(self.seed, "resolver", probe.probe_id, ordinal),
            **self.resolver_options,
        )
        self._impl_by_resolver[address] = sample.impl_name
        return resolver, sample.impl_name

    def build_vantage_points(self) -> list[VantagePoint]:
        """Assign recursives to probes: shared within AS, sometimes two.

        Probes are processed in probe-id order and each consults only
        its own derived stream plus per-AS sharing state.  An AS's
        probes must all be built by the same platform instance (the
        sharded engine partitions by ASN) for sharing to match a
        whole-population build.
        """
        self.vantage_points = []
        for probe in sorted(self.probes, key=lambda p: p.probe_id):
            rng = derive_rng(self.seed, "vp", probe.probe_id)
            resolvers: list[tuple[RecursiveResolver, str]] = []
            if (
                self.public_services
                and rng.random() < self.public_resolver_share
            ):
                service = rng.choice(self.public_services)
                instance = service.instance_for(probe, self.network)
                resolvers.append((instance, "public"))
            else:
                shared = self._resolver_by_as.get(probe.asn)
                if shared is not None and rng.random() < self.resolver_sharing_share:
                    resolvers.append(
                        (shared, self._impl_by_resolver[shared.address])
                    )
                else:
                    resolver, impl = self._new_resolver(probe, 0, rng)
                    self._resolver_by_as.setdefault(probe.asn, resolver)
                    resolvers.append((resolver, impl))
                if rng.random() < self.second_resolver_share:
                    resolver, impl = self._new_resolver(probe, 1, rng)
                    resolvers.append((resolver, impl))
            for ordinal, (resolver, impl) in enumerate(resolvers):
                vp_id = probe.probe_id * VPS_PER_PROBE + ordinal
                self.vantage_points.append(
                    VantagePoint(vp_id, probe, resolver, impl)
                )
        return self.vantage_points

    def configure_zone(self, origin: Name | str, addresses: list[str]) -> None:
        """Teach every vantage point's recursive the zone's NS addresses.

        Keyed by resolver *instance*, not address: anycast public
        services run many instances behind one address.
        """
        if isinstance(origin, str):
            origin = Name.from_text(origin)
        origin = origin.intern()  # parse once, share across all resolvers
        seen: set[int] = set()
        for vp in self.vantage_points:
            if id(vp.resolver) not in seen:
                vp.resolver.add_stub_zone(origin, addresses)
                seen.add(id(vp.resolver))

    # -- measurement ------------------------------------------------------------

    def _profiled_vps(
        self, store: ObservationStore
    ) -> list[tuple[VantagePoint, int]]:
        """Pair each VP with its store profile id, registered once.

        The profile carries the VP's constant columns (probe id,
        recursive address, implementation, continent), so the per-query
        record is a handful of scalar appends.
        """
        return [
            (
                vp,
                store.profile_id(
                    vp.probe.probe_id,
                    vp.resolver.address,
                    vp.impl_name,
                    vp.continent,
                ),
            )
            for vp in self.vantage_points
        ]

    def _record(
        self,
        store: ObservationStore,
        vp: VantagePoint,
        profile_id: int,
        label: bytes,
        suffix_id: int,
        now: float,
        result,
    ) -> None:
        """Record one finished resolution as a store row.

        ``now`` is the query *issue* time (the measurement tick), not the
        completion time: observations sort by (timestamp, vp_id) in the
        canonical merge, and the issue time is the layout-invariant key
        both the synchronous loop and the event kernel agree on.  The
        qname is stored as its unique ``label`` bytes plus the interned
        campaign suffix (``suffix_id``) — no qname string materializes.
        """
        site = ""
        if result.succeeded:
            marker = result.txt_value() or ""
            site = marker.rsplit("-", 1)[-1] if marker else ""
        store.append(
            vp.vp_id,
            profile_id,
            now,
            label,
            suffix_id,
            site,
            result.final_address,
            result.rtt_ms,
            result.attempts,
            result.succeeded,
        )
        telemetry = self.telemetry
        if telemetry.enabled:
            registry = telemetry.registry
            registry.counter(
                "measurement_queries_total",
                "measured queries, by answering NS address and site",
                ("ns", "site"),
            ).labels(ns=result.final_address or "none", site=site or "none").inc()
            if result.rtt_ms is not None:
                registry.histogram(
                    "measurement_rtt_ms",
                    "RTT of the final answering exchange (ms)",
                    ("site",),
                ).labels(site=site or "none").observe(result.rtt_ms)
            if not result.succeeded:
                registry.counter(
                    "measurement_failures_total",
                    "measurements with no successful answer",
                ).inc()
            telemetry.profiler.count("observations")

    def measure(
        self,
        domain: str,
        interval_s: float = 120.0,
        duration_s: float = 3600.0,
        label_prefix: str = "m",
        heartbeat_every: int = 0,
        shard: int | None = None,
        kernel: bool = False,
    ) -> MeasurementRun:
        """Run the paper's campaign: a TXT query per VP per interval.

        Labels are unique per (VP, tick) so recursive record caches never
        short-circuit a query (§3.1 "cold caches").

        ``heartbeat_every`` > 0 emits a ``shard.heartbeat`` note to the
        event sink after every N completed ticks — the live monitor's
        progress feed.  Heartbeats are deterministic (virtual
        timestamps, tick counts) and the parallel engine excludes them
        from the canonical merged log, so enabling them never perturbs
        a result.  The default 0 skips everything, including the flush.

        ``kernel=True`` drives the campaign through the discrete-event
        kernel: ticks are timer events, responses are delivery events,
        and retries are timeout events, so the whole campaign is one
        heap drain interleaving every in-flight query.  Observations
        carry the same content as the synchronous loop — issue-time
        timestamps, layout-invariant RNG streams — so the canonical
        merged output stays byte-identical across worker layouts.
        """
        if not self.vantage_points:
            self.build_vantage_points()
        run = MeasurementRun(domain, interval_s, duration_s)
        ticks = int(duration_s // interval_s)
        self._emit_campaign_note(
            "measure.start", domain, interval_s, duration_s,
        )
        # Parse the invariant suffix once; each query name is then one
        # prepended label instead of a full text parse per query.
        suffix = Name.from_text(f"probe.{domain}").intern()
        store = run.store
        suffix_id = store.intern(f".probe.{domain}")
        profiled = self._profiled_vps(store)
        costs = self.telemetry.costs
        costs_on = costs.enabled
        # Botnet membership is a pure function of (attack seed, vp_id):
        # any shard conscripts the same VPs the serial run would.
        plan = self.attack_plan
        bots = plan.bot_ids(vp.vp_id for vp, _ in profiled) if plan else frozenset()
        if kernel:
            self._measure_kernel(
                run, ticks, interval_s, label_prefix, suffix, suffix_id,
                profiled, heartbeat_every, shard, plan, bots,
            )
        else:
            clock = self.network.clock
            record = self._record
            txt = RRType.TXT
            child = suffix.child
            epoch = clock.now
            with self.telemetry.profiler.phase("platform.measure"):
                for tick in range(ticks):
                    if costs_on:
                        # One virtual-time timer firing per measurement
                        # tick — the synchronous stand-in for the
                        # kernel's tick event.
                        costs.count("timer_event")
                    now = clock.now
                    attacking = plan is not None and plan.active(now - epoch)
                    for vp, pid in profiled:
                        if attacking and vp.vp_id in bots:
                            qname, label, s_text = plan.query_for(
                                vp.vp_id, tick
                            )
                            sid = store.intern(s_text)
                            if costs_on:
                                costs.count("attack_query")
                        else:
                            label = f"{label_prefix}-{vp.vp_id}-{tick}".encode(
                                "ascii"
                            )
                            qname, sid = child(label), suffix_id
                        result = vp.resolver.resolve(qname, txt)
                        record(store, vp, pid, label, sid, now, result)
                    clock.advance(interval_s)
                    if heartbeat_every and (tick + 1) % heartbeat_every == 0:
                        self._emit_heartbeat(
                            tick + 1, ticks, len(store), shard
                        )
        self._emit_campaign_note(
            "measure.end", domain, interval_s, duration_s,
            observations=len(run.store),
        )
        return run

    def _measure_kernel(
        self,
        run: MeasurementRun,
        ticks: int,
        interval_s: float,
        label_prefix: str,
        suffix: Name,
        suffix_id: int,
        profiled: list[tuple[VantagePoint, int]],
        heartbeat_every: int,
        shard: int | None,
        plan=None,
        bots: frozenset = frozenset(),
    ) -> None:
        """The campaign as one event-kernel drain.

        Every tick is a timer event issuing one query per VP (in vp_id
        order, which pins the heap's tie-break sequence to the same
        order the synchronous loop uses); completions append to the run
        via per-query callbacks.  The drain runs past the campaign end
        so in-flight retries finish — then the clock is brought to the
        nominal campaign end if the last event fell short of it.
        """
        from functools import partial

        from ..netsim.sched import EventKernel

        clock = self.network.clock
        costs = self.telemetry.costs
        kernel = EventKernel(clock=clock, costs=costs)
        epoch = clock.now
        store = run.store
        record = self._record
        costs_on = costs.enabled

        def tick_event(tick: int) -> None:
            if costs_on:
                costs.count("timer_event")
            now = clock.now
            # Same per-VP attack decision as the synchronous loop — the
            # qname stream must not depend on the engine.
            attacking = plan is not None and plan.active(now - epoch)
            for vp, pid in profiled:
                if attacking and vp.vp_id in bots:
                    qname, label, s_text = plan.query_for(vp.vp_id, tick)
                    sid = store.intern(s_text)
                    if costs_on:
                        costs.count("attack_query")
                else:
                    label = f"{label_prefix}-{vp.vp_id}-{tick}".encode("ascii")
                    qname, sid = suffix.child(label), suffix_id
                vp.resolver.resolve_event(
                    qname,
                    RRType.TXT,
                    kernel,
                    partial(record, store, vp, pid, label, sid, now),
                )

        for tick in range(ticks):
            kernel.call_at(epoch + tick * interval_s, tick_event, tick)
        if heartbeat_every:
            for tick in range(heartbeat_every, ticks + 1, heartbeat_every):
                kernel.call_at(
                    epoch + tick * interval_s,
                    partial(self._emit_kernel_heartbeat, run, tick, ticks, shard),
                )
        with self.telemetry.profiler.phase("platform.measure"):
            kernel.run()
        end = epoch + ticks * interval_s
        if end > clock.now:
            clock.advance_to(end)

    def _emit_kernel_heartbeat(
        self, run: MeasurementRun, tick: int, ticks: int, shard: int | None
    ) -> None:
        self._emit_heartbeat(tick, ticks, len(run.store), shard)

    def _emit_heartbeat(
        self, tick: int, ticks: int, observations: int, shard: int | None
    ) -> None:
        """One shard-progress note, flushed eagerly so tailers see it."""
        events = self.telemetry.events
        if not events.enabled:
            return
        from ..telemetry import Note

        events.emit(Note(
            name="shard.heartbeat",
            at=self.network.clock.now,
            data={
                "shard": int(shard or 0),
                "tick": tick,
                "ticks": ticks,
                "observations": observations,
                "vantage_points": len(self.vantage_points),
                "virtual_s": self.network.clock.now,
            },
        ))
        events.flush()

    def _emit_campaign_note(
        self, name: str, domain: str, interval_s: float, duration_s: float,
        **extra,
    ) -> None:
        """Mark campaign boundaries in the event log, when one is attached."""
        events = self.telemetry.events
        if not events.enabled:
            return
        from ..telemetry import Note

        events.emit(Note(
            name=name,
            at=self.network.clock.now,
            data={
                "domain": domain,
                "interval_s": interval_s,
                "duration_s": duration_s,
                "vantage_points": len(self.vantage_points),
                **extra,
            },
        ))

    def measure_event_driven(
        self,
        domain: str,
        interval_s: float = 120.0,
        duration_s: float = 3600.0,
        label_prefix: str = "e",
    ) -> MeasurementRun:
        """Like :meth:`measure`, but on the discrete-event engine.

        Real Atlas probes are not synchronized: each VP fires at its own
        phase within the interval.  Queries are events on the shared
        virtual clock, so interleavings are realistic while remaining
        fully deterministic for a given platform RNG.
        """
        if not self.vantage_points:
            self.build_vantage_points()
        run = MeasurementRun(domain, interval_s, duration_s)
        scheduler = EventScheduler(
            clock=self.network.clock, telemetry=self.telemetry
        )
        epoch = self.network.clock.now

        suffix = Name.from_text(f"probe.{domain}").intern()
        store = run.store
        suffix_id = store.intern(f".probe.{domain}")

        def fire(vp: VantagePoint, pid: int, tick: int) -> None:
            now = self.network.clock.now
            label = f"{label_prefix}-{vp.vp_id}-{tick}".encode("ascii")
            result = vp.resolver.resolve(suffix.child(label), RRType.TXT)
            self._record(store, vp, pid, label, suffix_id, now, result)
            next_at = now + interval_s
            if next_at - epoch < duration_s:
                scheduler.schedule_at(next_at, lambda: fire(vp, pid, tick + 1))

        for vp, pid in self._profiled_vps(store):
            # Phase derives from the VP identity, not a shared stream, so
            # the firing schedule survives population resharding.
            phase = derive_rng(self.seed, "phase", vp.vp_id).uniform(
                0.0, interval_s
            )
            scheduler.schedule_at(
                epoch + phase, lambda vp=vp, pid=pid: fire(vp, pid, 0)
            )
        self._emit_campaign_note(
            "measure.start", domain, interval_s, duration_s,
        )
        with self.telemetry.profiler.phase("platform.measure"):
            scheduler.run_until(epoch + duration_s)
        self._emit_campaign_note(
            "measure.end", domain, interval_s, duration_s,
            observations=len(run.store),
        )
        return run
