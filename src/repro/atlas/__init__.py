"""Vantage-point platform: probes, recursives, measurement campaigns."""

from .catchment import CatchmentEntry, CatchmentReport, map_catchment
from .platform import AtlasPlatform, MeasurementRun, QueryObservation, VantagePoint
from .probes import Probe, ProbeGenerator, continent_counts
from .public import PublicResolverService

__all__ = [
    "AtlasPlatform",
    "CatchmentEntry",
    "CatchmentReport",
    "MeasurementRun",
    "Probe",
    "ProbeGenerator",
    "PublicResolverService",
    "QueryObservation",
    "VantagePoint",
    "continent_counts",
    "map_catchment",
]
