#!/usr/bin/env python3
"""NXNSAttack vs the testbed (§7 resilience, sharpened).

The paper's §7 argues NS-set design also buys DDoS resilience.  This
study probes that with the NXNSAttack mechanism: a malicious zone whose
delegations fan out to glueless NS targets *under the victim zone*, so
a recursive chasing them amplifies one bot query into up to fan-out
fetches against the victim's authoritatives.

1. **Amplification, per selector** — resolve one delegation-bomb qname
   directly through every selector implementation, unmitigated and with
   a MaxFetch cap: unmitigated amplification equals the fan-out exactly,
   mitigated never exceeds the cap.
2. **Share drift under fire** — full campaigns (control, unmitigated
   attack, MaxFetch-mitigated attack): per-NS query share and SERVFAIL
   rate per attack window, plus the fetch-amplification factor billed in
   the cost ledger.
3. **RRL under fire** — a spoofed /24 water-torture flood straight at
   the victim (slipped/dropped, bystanders unaffected), then RRL
   blunting the campaign's NXDOMAIN fetch storm, counts from the
   cost ledger.

Run:  python examples/nxns_study.py [--probes N]
"""

import argparse
import random

from repro.analysis import render_table
from repro.core import ExperimentConfig, TestbedExperiment
from repro.dns.message import Message
from repro.dns.name import Name
from repro.dns.rdata import NS, SOA, TXT
from repro.dns.rrl import ResponseRateLimiter
from repro.dns.server import AuthoritativeServer
from repro.dns.types import Rcode, RRType
from repro.dns.zone import Zone
from repro.netsim.adversary import (
    ATTACKER_ADDRESS,
    BUILTIN_ATTACKS,
    DelegationBomb,
    scaled_profile,
    water_torture_label,
)
from repro.netsim.geo import DATACENTERS, PROBE_CITIES
from repro.netsim.latency import LatencyModel, LatencyParameters
from repro.netsim.network import SimNetwork
from repro.resolvers.population import SELECTOR_CLASSES
from repro.resolvers.resolver import RecursiveResolver
from repro.telemetry import Telemetry

VICTIM = "ourtestdomain.nl."
VICTIM_ADDRESS = "10.0.0.1"


def victim_engine() -> AuthoritativeServer:
    zone = Zone(VICTIM)
    apex_ns = Name.from_text("ns1." + VICTIM)
    zone.add(
        VICTIM,
        RRType.SOA,
        SOA(apex_ns, Name.from_text("h." + VICTIM), 1, 7200, 3600, 1209600, 60),
    )
    zone.add(VICTIM, RRType.NS, NS(apex_ns))
    zone.add("probe." + VICTIM, RRType.TXT, TXT.from_value("alive"), ttl=5)
    return AuthoritativeServer("victim", [zone])


def amplification_for(selector_name: str, bomb: DelegationBomb, **limits):
    """ns_fetches billed for one bomb query through one selector."""
    network = SimNetwork(latency=LatencyModel(LatencyParameters(loss_rate=0.0)))
    network.register_host(
        VICTIM_ADDRESS, DATACENTERS["FRA"], victim_engine().handle_wire
    )
    network.register_host(
        ATTACKER_ADDRESS, DATACENTERS["FRA"], bomb.build_server().handle_wire
    )
    resolver = RecursiveResolver(
        "10.9.0.1",
        PROBE_CITIES["AMS"],
        network,
        SELECTOR_CLASSES[selector_name](rng=random.Random(11)),
        rng=random.Random(7),
        **limits,
    )
    resolver.add_stub_zone(VICTIM, [VICTIM_ADDRESS])
    resolver.add_stub_zone(bomb.origin, [ATTACKER_ADDRESS])
    result = resolver.resolve(bomb.qname(0, b"study"), RRType.TXT)
    assert result.rcode == Rcode.SERVFAIL, "bomb targets never resolve"
    return result.ns_fetches


def run_campaign(args, attack):
    config = ExperimentConfig.for_combination(
        "2C",
        num_probes=args.probes,
        interval_s=args.interval_s,
        duration_s=args.duration_s,
        seed=args.seed,
        attack=attack,
    )
    telemetry = Telemetry.enabled_bundle(
        metrics=False, tracing=False, profiling=False, costs=True
    )
    return config, TestbedExperiment(config, telemetry=telemetry).run()


def window_stats(observations, begin, end, addresses):
    """(per-address share, failure rate) over [begin, end)."""
    window = [obs for obs in observations if begin <= obs.timestamp < end]
    total = len(window)
    counts = dict.fromkeys(addresses, 0)
    failed = 0
    for obs in window:
        if obs.succeeded:
            if obs.authoritative in counts:
                counts[obs.authoritative] += 1
        else:
            failed += 1
    shares = {
        address: (counts[address] / total if total else 0.0)
        for address in addresses
    }
    return shares, (failed / total if total else 0.0)


def ledger_amplification(costs: dict):
    totals = costs.get("totals", {})
    bot = totals.get("attack_query", 0)
    fetches = totals.get("ns_fetch", 0)
    return (fetches / bot) if bot else 0.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probes", type=int, default=120)
    parser.add_argument("--interval-s", type=float, default=60.0)
    parser.add_argument("--duration-s", type=float, default=1800.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--fan-out", type=int, default=10)
    parser.add_argument("--max-fetch", type=int, default=3)
    args = parser.parse_args()

    # -- Part 1: amplification per selector, with/without MaxFetch ------
    bomb = DelegationBomb(
        "attacker.example.", VICTIM, fan_out=args.fan_out, bombs=4, seed=3
    )
    rows = []
    for name in sorted(SELECTOR_CLASSES):
        raw = amplification_for(name, bomb)
        capped = amplification_for(name, bomb, max_fetch=args.max_fetch)
        assert raw == args.fan_out, (
            f"{name}: unmitigated amplification {raw} != fan-out {args.fan_out}"
        )
        assert capped <= args.max_fetch, (
            f"{name}: MaxFetch breached ({capped} > {args.max_fetch})"
        )
        rows.append([name, str(raw), str(capped)])
    print(
        render_table(
            ["selector", "fetches (raw)", f"fetches (max_fetch={args.max_fetch})"],
            rows,
            title=(
                f"one bomb query, fan-out {args.fan_out}: glueless NS "
                "fetches per selector"
            ),
        )
    )
    print()
    print(
        f"unmitigated recursives amplify each bomb query into "
        f"{args.fan_out} fetches; MaxFetch caps amplification at "
        f"{args.max_fetch} for every selector."
    )

    # -- Part 2: campaign share drift, control vs attack vs mitigated ---
    mitigated = BUILTIN_ATTACKS["nxns-mitigated"][0]
    campaigns = [
        ("control", None),
        ("nxns", "nxns"),
        ("nxns+maxfetch", mitigated),
    ]
    results = {}
    config = None
    for label, attack in campaigns:
        config, results[label] = run_campaign(args, attack)
    addresses = results["control"].addresses
    names = {
        address: spec.name
        for spec, address in zip(config.authoritatives, addresses)
    }
    begin, end = args.duration_s / 3.0, 2.0 * args.duration_s / 3.0
    windows = [
        ("before", 0.0, begin),
        ("attack", begin, end),
        ("after", end, args.duration_s),
    ]
    rows = []
    for window_label, lo, hi in windows:
        for label, _ in campaigns:
            shares, failure = window_stats(
                results[label].observations, lo, hi, addresses
            )
            rows.append(
                [
                    window_label,
                    label,
                    *(f"{shares[address]:6.1%}" for address in addresses),
                    f"{failure:6.1%}",
                ]
            )
    print()
    print(
        render_table(
            ["window", "campaign"]
            + [f"{names[a]} share" for a in addresses]
            + ["SERVFAIL"],
            rows,
            title=(
                f"per-NS share drift, attack live [{begin:g}s, {end:g}s) "
                f"of {args.duration_s:g}s"
            ),
        )
    )

    def victim_load(label):
        return sum(results[label].server_query_counts.values())

    raw_amp = ledger_amplification(results["nxns"].costs)
    capped_amp = ledger_amplification(results["nxns+maxfetch"].costs)
    control_load = victim_load("control")
    attack_load = victim_load("nxns")
    mitigated_load = victim_load("nxns+maxfetch")
    assert raw_amp >= 0.9 * args.fan_out, "campaign amplification ~ fan-out"
    assert capped_amp <= mitigated.max_fetch, "ledger must respect MaxFetch"
    assert attack_load > control_load, "the attack must add victim load"
    assert mitigated_load < attack_load, "MaxFetch must shed victim load"
    _, attack_failure = window_stats(
        results["nxns"].observations, begin, end, addresses
    )
    _, control_failure = window_stats(
        results["control"].observations, begin, end, addresses
    )
    assert attack_failure > control_failure, "bomb queries SERVFAIL in-window"
    print()
    print(
        f"victim authoritatives answer {control_load} queries in the "
        f"control, {attack_load} under the unmitigated attack "
        f"({raw_amp:.1f}x fetch amplification), and {mitigated_load} with "
        f"MaxFetch ({capped_amp:.1f}x) — MaxFetch caps the amplification."
    )

    # -- Part 3: authoritative RRL against the floods -------------------
    # 3a. Water torture as RRL's design target: spoofed clients from one
    # /24 spray unique nonexistent names straight at the victim.  The
    # zone-keyed error buckets aggregate every NXDOMAIN, so the flood is
    # slipped/dropped while a client elsewhere still gets full answers.
    engine = victim_engine()
    engine.rate_limiter = ResponseRateLimiter(
        responses_per_second=5, slip_ratio=2, ipv4_prefix_len=24
    )
    answered = 0
    for index in range(200):
        label = water_torture_label(41, index)
        query = Message.make_query(label + "." + VICTIM, RRType.A, msg_id=index)
        wire = engine.handle_wire(
            query.to_wire(),
            client=f"198.51.100.{index % 250 + 1}:4242",
            now=index * 0.002,
        )
        if wire is not None and not Message.from_wire(wire).truncated:
            answered += 1
    limiter = engine.rate_limiter
    assert limiter.slipped + limiter.dropped > 0, "RRL must fire under the flood"
    assert answered < 200, "RRL must shed most of the flood"
    bystander = engine.handle_wire(
        Message.make_query("probe." + VICTIM, RRType.TXT, msg_id=999).to_wire(),
        client="203.0.113.9:53",
        now=0.1,
    )
    assert not Message.from_wire(bystander).truncated, "bystanders unaffected"

    # 3b. RRL also blunts the NXNS fetch storm inside a campaign: the
    # bomb's glueless fetches NXDOMAIN against the victim many times a
    # second from each recursive, and the zone-keyed buckets catch that.
    _, limited = run_campaign(
        args, scaled_profile(BUILTIN_ATTACKS["nxns"][0], rrl_qps=2)
    )
    campaign_slipped = limited.costs.get("totals", {}).get("rrl_slip", 0)
    campaign_dropped = limited.costs.get("totals", {}).get("rrl_drop", 0)
    assert campaign_slipped + campaign_dropped > 0, (
        "RRL must catch the campaign fetch storm"
    )
    print()
    print(
        f"water torture from one /24: RRL answers {answered}/200 flood "
        f"queries in full, slips {limiter.slipped} (TC) and drops "
        f"{limiter.dropped}, while a bystander still gets real answers."
    )
    print(
        f"under the campaign's fetch storm RRL slips "
        f"{campaign_slipped} and drops {campaign_dropped} NXDOMAIN "
        f"responses at the victim's authoritatives."
    )
    print()
    print("all adversarial claims hold.")


if __name__ == "__main__":
    main()
