#!/usr/bin/env python3
"""Operator tool: evaluate authoritative NS-set designs (§7).

Given a set of candidate designs — how many NSes, which are unicast,
which are anycast and where — the planner computes the latency a
worldwide recursive population will experience, applying the paper's
central finding that every NS keeps receiving queries.

The default run reproduces the SIDN case study: 4 NSes, from
"everything unicast at home (FRA)" to "anycast everywhere".  Pass
--sites to try your own anycast footprint.

Run:  python examples/deployment_planner.py [--clients N] [--sites FRA IAD ...]
"""

import argparse
import random

from repro.analysis import render_table
from repro.atlas import ProbeGenerator
from repro.core import (
    AuthoritativeSpec,
    DeploymentPlanner,
    SelectionModel,
    sidn_style_designs,
)
from repro.netsim import DATACENTERS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=500)
    parser.add_argument(
        "--sites", nargs="+", default=["FRA", "IAD", "SYD", "GRU"],
        choices=sorted(DATACENTERS), help="anycast footprint to consider",
    )
    parser.add_argument("--home", default="FRA", choices=sorted(DATACENTERS))
    parser.add_argument(
        "--latency-share", type=float, default=0.5,
        help="fraction of queries chasing the fastest NS (paper: ~half)",
    )
    args = parser.parse_args()

    clients = ProbeGenerator(rng=random.Random(7)).generate(args.clients)
    planner = DeploymentPlanner(
        clients,
        selection=SelectionModel(latency_sensitive_share=args.latency_share),
    )

    designs = sidn_style_designs(
        anycast_sites=tuple(args.sites), home_site=args.home
    )
    evaluations = planner.rank(designs)

    rows = [
        [
            ev.name,
            str(ev.anycast_count),
            f"{ev.mean_expected_ms:.1f}",
            f"{ev.median_expected_ms:.1f}",
            f"{ev.p90_expected_ms:.1f}",
            f"{ev.mean_worst_ms:.1f}",
        ]
        for ev in evaluations
    ]
    print(
        render_table(
            ["design", "anycast", "mean(ms)", "median(ms)", "p90(ms)", "worst-NS(ms)"],
            rows,
            title=f"NS-set designs over {args.clients} clients "
            f"(anycast sites: {', '.join(args.sites)}; home: {args.home})",
        )
    )
    best = evaluations[0]
    print()
    print(f"recommended design: {best.name}")
    print(
        "paper §7: worst-case latency is limited by the least anycast "
        "authoritative — if some NSes are anycast, all should be."
    )

    # A custom mixed design, as an API example.
    custom = planner.evaluate(
        [
            AuthoritativeSpec("ns1", tuple(args.sites)),
            AuthoritativeSpec("ns2", (args.home,)),
        ],
        name="2-NS mixed",
    )
    print(
        f"\nexample custom design '2-NS mixed': mean {custom.mean_expected_ms:.1f} ms, "
        f"p90 {custom.p90_expected_ms:.1f} ms, worst NS {custom.mean_worst_ms:.1f} ms"
    )


if __name__ == "__main__":
    main()
