#!/usr/bin/env python3
"""Production-trace analysis: the paper's §5 on synthetic DITL/.nl data.

Generates a one-hour Root capture (10 of 13 letters, like DITL-2017)
and a one-hour .nl capture (4 of 8 NSes, like ENTRADA), stores both as
JSONL trace files, reloads them, and prints the Figure 7 aggregates.

Run:  python examples/passive_analysis.py [--recursives N] [--outdir DIR]
"""

import argparse
import tempfile
from pathlib import Path

from repro.analysis import analyze_rank_bands, render_rank_bands
from repro.passive import (
    generate_ditl_trace,
    generate_nl_trace,
    load_trace,
    save_trace,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--recursives", type=int, default=250)
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--outdir", default=None, help="where to keep the traces")
    args = parser.parse_args()

    outdir = Path(args.outdir) if args.outdir else Path(tempfile.mkdtemp())
    outdir.mkdir(parents=True, exist_ok=True)

    print(f"generating Root DITL-style capture ({args.recursives} recursives)...")
    root_trace = generate_ditl_trace(num_recursives=args.recursives, seed=args.seed)
    root_path = outdir / "ditl_root.jsonl"
    save_trace(root_trace, root_path)
    print(f"  {root_trace.query_count} queries -> {root_path}")

    print("generating .nl ENTRADA-style capture...")
    nl_trace = generate_nl_trace(num_recursives=args.recursives, seed=args.seed + 1)
    nl_path = outdir / "nl.jsonl"
    save_trace(nl_trace, nl_path)
    print(f"  {nl_trace.query_count} queries -> {nl_path}")

    # Reload from disk — the analysis works on stored captures.
    root_trace = load_trace(root_path)
    nl_trace = load_trace(nl_path)

    root = analyze_rank_bands(
        root_trace.queries_by_recursive(), target_count=10, min_queries=250
    )
    nl = analyze_rank_bands(
        nl_trace.queries_by_recursive(), target_count=4, min_queries=250
    )

    print()
    print(render_rank_bands(root, "Root, 10 of 13 letters"))
    print("paper: ~20% single letter, 60% >=6 letters, ~2% all 10")
    print()
    print(render_rank_bands(nl, ".nl, 4 of 8 NSes"))
    print("paper: the majority of recursives query all 4 observed NSes")


if __name__ == "__main__":
    main()
