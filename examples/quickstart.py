#!/usr/bin/env python3
"""Quickstart: the DNS substrate and a first selection measurement.

Part 1 runs a real authoritative name server on a loopback UDP socket
and queries it with the library's own wire-format client.

Part 2 deploys the paper's 2C combination (Frankfurt + Sydney) on the
simulated Internet, lets an Amsterdam-based recursive resolve through
it for an hour, and shows the latency-driven preference emerge.

Run:  python examples/quickstart.py
"""

import random

from repro.core import Deployment
from repro.dns import (
    NS,
    SOA,
    TXT,
    AuthoritativeServer,
    Name,
    RRType,
    UdpAuthoritativeServer,
    Zone,
    query_udp,
)
from repro.netsim import PROBE_CITIES, SimNetwork
from repro.resolvers import BindSelector, RecursiveResolver

DOMAIN = "ourtestdomain.nl."


def part1_real_udp() -> None:
    print("=== Part 1: a real authoritative server over UDP ===")
    zone = Zone(DOMAIN)
    zone.add(
        DOMAIN,
        RRType.SOA,
        SOA(
            Name.from_text(f"ns1.{DOMAIN}"),
            Name.from_text(f"hostmaster.{DOMAIN}"),
            2017041201, 7200, 3600, 1209600, 60,
        ),
    )
    zone.add(DOMAIN, RRType.NS, NS(Name.from_text(f"ns1.{DOMAIN}")))
    zone.add(f"probe.{DOMAIN}", RRType.TXT, TXT.from_value("hello from FRA"), ttl=5)

    engine = AuthoritativeServer("fra.example", [zone])
    with UdpAuthoritativeServer(engine) as server:
        host, port = server.address
        print(f"authoritative listening on {host}:{port}")
        response = query_udp(server.address, f"probe.{DOMAIN}", RRType.TXT)
        print(f"TXT answer: {response.answers[0].rdata.value!r}")
        print(f"rcode={response.rcode.to_text()} aa={response.authoritative}")
    print()


def part2_simulated_measurement() -> None:
    print("=== Part 2: recursive selection on the simulated Internet ===")
    network = SimNetwork()
    deployment = Deployment.from_sites(DOMAIN, ("FRA", "SYD"))
    addresses = deployment.deploy(network)
    print(f"deployed ns1(FRA)={addresses[0]} ns2(SYD)={addresses[1]}")

    resolver = RecursiveResolver(
        "10.53.0.1",
        PROBE_CITIES["AMS"],  # an ISP resolver in Amsterdam
        network,
        BindSelector(rng=random.Random(1)),
        rng=random.Random(2),
    )
    resolver.add_stub_zone(DOMAIN, addresses)

    counts = {"FRA": 0, "SYD": 0}
    for tick in range(30):  # one hour, every 2 minutes, unique labels
        result = resolver.resolve(f"q{tick}.probe.{DOMAIN}", RRType.TXT)
        counts[result.served_by] += 1
        network.clock.advance(120.0)

    total = sum(counts.values())
    print(f"queries per site after 1h: {counts}")
    print(
        f"the BIND-style resolver sent {counts['FRA'] / total:.0%} of queries "
        "to the nearby Frankfurt authoritative — the paper's §4.2 in one VP"
    )


if __name__ == "__main__":
    part1_real_udp()
    part2_simulated_measurement()
