#!/usr/bin/env python3
"""Reproduce the paper's §4 testbed study at laptop scale.

Runs the 2A/2B/2C combinations of Table 1 against a few hundred
vantage points, then prints Figure 2 (queries to probe all NSes),
Figure 3 (query share vs. RTT), Figure 4 (weak/strong preference), and
Table 2 (per-continent distribution) for each.

Run:  python examples/resolver_selection_study.py [--probes N]
"""

import argparse

from repro.analysis import (
    analyze_preference,
    analyze_probe_all,
    analyze_query_share,
    render_preference,
    render_probe_all,
    render_query_share,
    render_table2,
    table2_rows,
)
from repro.core import COMBINATIONS, run_combination


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probes", type=int, default=300, help="probe count")
    parser.add_argument("--seed", type=int, default=20170412)
    parser.add_argument(
        "--combos", nargs="+", default=["2A", "2B", "2C"],
        choices=sorted(COMBINATIONS),
    )
    args = parser.parse_args()

    probe_all, shares, preferences, t2 = [], [], [], {}
    for combo_id in args.combos:
        combo = COMBINATIONS[combo_id]
        print(f"running {combo_id} ({', '.join(combo.sites)}) ...")
        result = run_combination(combo_id, num_probes=args.probes, seed=args.seed)
        sites = set(combo.sites)
        observations = result.observations
        probe_all.append(analyze_probe_all(observations, sites, combo_id=combo_id))
        shares.append(analyze_query_share(observations, sites, combo_id=combo_id))
        preferences.append(analyze_preference(observations, sites, combo_id=combo_id))
        t2[combo_id] = table2_rows(observations, sites)

    print()
    print(render_probe_all(probe_all))
    print()
    print(render_query_share(shares))
    print()
    print(render_preference(preferences))
    print()
    print(render_table2(t2))
    print()
    print("paper reference points: 2A weak 61%/strong 10%; 2B 59%/12%; 2C 69%/37%")
    print("paper Table 2 (2C, EU): FRA 83% @ 39ms, SYD 17% @ 355ms")


if __name__ == "__main__":
    main()
