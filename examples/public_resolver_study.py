#!/usr/bin/env python3
"""How public anycast resolvers shape server selection (§3.1).

Runs the 2C combination twice: once with every probe on its ISP
resolver, once with a third of probes behind an anycast public DNS
service (one well-known address, six instances worldwide).  Public-DNS
VPs inherit the *instance's* vantage: a probe in Helsinki measured
through the Amsterdam instance looks like an Amsterdam client to the
authoritatives.

Run:  python examples/public_resolver_study.py [--probes N]
"""

import argparse
import random

from repro.analysis import analyze_preference, render_preference
from repro.atlas import AtlasPlatform, ProbeGenerator, PublicResolverService
from repro.core import Deployment
from repro.netsim import SimNetwork
from repro.resolvers import ResolverPopulation

DOMAIN = "ourtestdomain.nl."


def run(probe_count: int, public_share: float, seed: int):
    network = SimNetwork()
    deployment = Deployment.from_sites(DOMAIN, ("FRA", "SYD"))
    addresses = deployment.deploy(network)
    probes = ProbeGenerator(rng=random.Random(seed)).generate(probe_count)
    services = []
    if public_share > 0:
        service = PublicResolverService.build(
            "10.88.88.88", network, rng=random.Random(seed + 1)
        )
        service.add_stub_zone(DOMAIN, addresses)
        services.append(service)
    platform = AtlasPlatform(
        network,
        probes,
        ResolverPopulation(rng=random.Random(seed + 2)),
        rng=random.Random(seed + 3),
        public_services=services,
        public_resolver_share=public_share,
    )
    platform.build_vantage_points()
    platform.configure_zone(DOMAIN, addresses)
    return platform.measure(DOMAIN.rstrip("."), interval_s=120.0, duration_s=3600.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probes", type=int, default=250)
    parser.add_argument("--public-share", type=float, default=0.33)
    parser.add_argument("--seed", type=int, default=21)
    args = parser.parse_args()

    results = []
    for label, share in (("ISP resolvers only", 0.0),
                         (f"{args.public_share:.0%} on public DNS", args.public_share)):
        print(f"running 2C with {label} ...")
        run_data = run(args.probes, share, args.seed)
        pref = analyze_preference(
            run_data.observations, {"FRA", "SYD"}, combo_id=label[:18]
        )
        results.append(pref)
        public_count = len(
            {o.vp_id for o in run_data.observations if o.impl_name == "public"}
        )
        print(f"  VPs: {run_data.vp_count} (public: {public_count})")

    print()
    print(render_preference(results))
    print()
    print(
        "public-DNS vantage points cluster behind a handful of instance "
        "locations, so their selection reflects the instance's latency "
        "map, not the probe's — one of the middlebox effects the paper "
        "controls for."
    )


if __name__ == "__main__":
    main()
