#!/usr/bin/env python3
"""One weak NS caps the zone (§6, Fig 5) — quantitatively, via faults.

The paper's headline engineering advice is that every NS of a zone must
be equally strong: recursives spread queries over the whole NS set, so
the worst authoritative sets the tail latency every operator actually
ships.  This study makes the argument with a live mid-campaign outage
instead of a static comparison:

1. run a two-NS zone (unicast FRA + unicast SYD) with the bundled
   ``ns-outage`` scenario — ns1 goes dark for the middle third of the
   campaign and then recovers;
2. track per-window query share: resolvers burn timeouts on the dead
   NS, abandon it, and the zone survives on ns2 alone (at ns2's RTT);
3. after recovery, selectors re-probe and ns1 re-earns query share —
   the zone's latency follows whichever NS set is *currently* healthy.

The same campaign without the scenario is the control.  Success rates
stay near 100% in both (the retry machinery hides the outage), but the
answered-query latency during the outage window degrades to the
surviving NS's RTT profile — exactly the "weakest NS caps the zone"
effect, here induced and then released within a single run.

Run:  python examples/ns_outage_study.py [--probes N]
"""

import argparse
from statistics import median

from repro.analysis import render_table
from repro.core import ExperimentConfig, TestbedExperiment
from repro.netsim.faults import ns_outage_scenario


def window_stats(observations, begin, end, addresses):
    """(per-address share, failure rate, median answered RTT) in a window."""
    window = [obs for obs in observations if begin <= obs.timestamp < end]
    total = len(window)
    counts = dict.fromkeys(addresses, 0)
    failed = 0
    rtts = []
    for obs in window:
        if obs.succeeded:
            if obs.authoritative in counts:
                counts[obs.authoritative] += 1
            rtts.append(obs.rtt_ms)
        else:
            failed += 1
    shares = {
        address: (counts[address] / total if total else 0.0)
        for address in addresses
    }
    failure = failed / total if total else 0.0
    return shares, failure, (median(rtts) if rtts else float("nan"))


def run(args, scenario):
    config = ExperimentConfig.for_combination(
        "2C",
        num_probes=args.probes,
        interval_s=args.interval_s,
        duration_s=args.duration_s,
        seed=args.seed,
        scenario=scenario,
    )
    experiment = TestbedExperiment(config)
    result = experiment.run()
    return config, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probes", type=int, default=150)
    parser.add_argument("--interval-s", type=float, default=60.0)
    parser.add_argument("--duration-s", type=float, default=1800.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    scenario = ns_outage_scenario(args.duration_s)
    outage = next(iter(scenario.events))

    baseline_config, baseline = run(args, None)
    _, faulted = run(args, scenario)
    addresses = baseline.addresses
    names = {
        address: spec.name
        for spec, address in zip(baseline_config.authoritatives, addresses)
    }

    windows = [
        ("before", 0.0, outage.start),
        ("outage", outage.start, outage.end),
        ("after", outage.end, args.duration_s),
    ]
    rows = []
    for label, begin, end in windows:
        for run_label, result in (("control", baseline), ("outage", faulted)):
            shares, failure, rtt = window_stats(
                result.observations, begin, end, addresses
            )
            rows.append(
                [
                    label,
                    run_label,
                    *(f"{shares[address]:6.1%}" for address in addresses),
                    f"{failure:6.1%}",
                    f"{rtt:7.1f}",
                ]
            )
    print(
        render_table(
            ["window", "run"]
            + [f"{names[a]} share" for a in addresses]
            + ["SERVFAIL", "med RTT ms"],
            rows,
            title=(
                f"ns1 dark [{outage.start:g}s, {outage.end:g}s) of "
                f"{args.duration_s:g}s — share, failures, answered latency"
            ),
        )
    )

    # The quantitative claims, asserted so the study is self-checking.
    dead = addresses[0]
    share_before, _, rtt_before = window_stats(
        faulted.observations, 0.0, outage.start, addresses
    )
    share_during, failure_during, rtt_during = window_stats(
        faulted.observations, outage.start, outage.end, addresses
    )
    share_after, _, _ = window_stats(
        faulted.observations, outage.end, args.duration_s, addresses
    )
    assert share_before[dead] > 0.2, "ns1 should carry real share when healthy"
    assert share_during[dead] < 0.05, "queries must abandon the dead NS"
    assert share_after[dead] > 0.05, "recovered NS must re-earn query share"
    assert failure_during < 0.25, "the NS *set* must keep the zone alive"

    print()
    print(
        f"during the outage ns1's share collapses "
        f"{share_before[dead]:.0%} -> {share_during[dead]:.0%} while the "
        f"zone keeps answering ({1 - failure_during:.1%} success), and "
        f"after recovery ns1 re-earns {share_after[dead]:.0%}."
    )
    print(
        f"the price is latency: answered queries go from "
        f"{rtt_before:.0f} ms median to {rtt_during:.0f} ms while only the "
        f"far NS survives — the weakest NS caps the zone."
    )


if __name__ == "__main__":
    main()
