#!/usr/bin/env python3
"""DDoS resilience of NS-set designs (§7 "Other Considerations").

Sweeps attack volume against the SIDN-style designs and prints zone
availability: an all-unicast zone collapses once its sites saturate,
while anycast spreads the same attack across many sites — the paper's
secondary argument (after latency) for anycast at every authoritative.

Run:  python examples/ddos_resilience.py [--clients N] [--capacity QPS]
"""

import argparse
import random

from repro.analysis import render_table
from repro.atlas import ProbeGenerator
from repro.core import AttackScenario, ResilienceEvaluator, sidn_style_designs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=300)
    parser.add_argument("--capacity", type=float, default=50_000.0,
                        help="per-site capacity in qps")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    clients = ProbeGenerator(rng=random.Random(args.seed)).generate(args.clients)
    evaluator = ResilienceEvaluator(
        clients,
        site_capacity_qps=args.capacity,
        rng=random.Random(args.seed + 1),
    )
    designs = sidn_style_designs()

    rows = []
    for attack_qps in (0.0, 250_000.0, 1_000_000.0, 4_000_000.0):
        attack = AttackScenario(total_qps=attack_qps, bot_count=200)
        for report in evaluator.compare(designs, attack):
            rows.append(
                [
                    f"{attack_qps:,.0f}",
                    report.design_name,
                    f"{report.availability:.2%}",
                    f"{report.mean_latency_ms:.0f}",
                    str(len(report.overloaded_sites())),
                ]
            )
    print(
        render_table(
            ["attack qps", "design", "availability", "latency(ms)", "overloaded"],
            rows,
            title=f"availability under attack ({args.clients} clients, "
            f"{args.capacity:,.0f} qps/site)",
        )
    )
    print()
    print(
        "anycast absorbs: the same attack that breaks the all-unicast zone"
        " leaves the all-anycast zone answering most queries."
    )


if __name__ == "__main__":
    main()
