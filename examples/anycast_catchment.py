#!/usr/bin/env python3
"""Anycast catchment mapping — and why the paper couldn't use CHAOS.

Deploys one anycast authoritative (FRA + SYD + IAD) and maps its
catchment two ways:

1. the classic way — direct ``CH TXT id.server.`` queries from every
   probe (works: the probe talks straight to the anycast address);
2. through recursives — the same CHAOS query sent via each probe's
   resolver (fails: the recursive answers ``id.server.`` itself, which
   is why the paper identifies sites with Internet-class TXT records).

Run:  python examples/anycast_catchment.py [--probes N]
"""

import argparse
import random

from repro.analysis import render_table
from repro.atlas import ProbeGenerator, map_catchment
from repro.core import AuthoritativeSpec, Deployment
from repro.dns import RRClass, RRType
from repro.netsim import SimNetwork
from repro.resolvers import BindSelector, RecursiveResolver

DOMAIN = "ourtestdomain.nl."


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probes", type=int, default=200)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    network = SimNetwork()
    deployment = Deployment(
        DOMAIN,
        [AuthoritativeSpec("ns1", ("FRA", "SYD", "IAD"), suboptimal_rate=0.08)],
    )
    service_address = deployment.deploy(network)[0]
    probes = ProbeGenerator(rng=random.Random(args.seed)).generate(args.probes)

    # 1. Direct CHAOS mapping.
    report = map_catchment(network, service_address, probes)
    rows = []
    for site, share in sorted(report.site_shares().items(), key=lambda kv: -kv[1]):
        rows.append([site, f"{share:.0%}", f"{report.median_rtt_ms(site):.0f}"])
    print(
        render_table(
            ["site", "catchment share", "median RTT (ms)"],
            rows,
            title=f"anycast catchment of {service_address} ({args.probes} probes)",
        )
    )
    suboptimal = report.suboptimal_fraction(network, probes)
    print(f"probes routed past their nearest site: {suboptimal:.0%}")

    # 2. The same CHAOS query through a recursive — the §3.1 pitfall.
    resolver = RecursiveResolver(
        "10.53.0.1", probes[0].location, network,
        BindSelector(rng=random.Random(6)),
    )
    resolver.add_stub_zone(DOMAIN, [service_address])
    result = resolver.resolve("id.server.", RRType.TXT, rrclass=RRClass.CH)
    print()
    print("CHAOS id.server. through a recursive answers:", result.txt_value())
    print(
        "-> the recursive identified *itself*, not the anycast site; this is"
        " why the paper uses Internet-class TXT records to identify sites."
    )


if __name__ == "__main__":
    main()
