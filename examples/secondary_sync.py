#!/usr/bin/env python3
"""Operating an NS set: primary/secondary replication over real sockets.

The paper's NS sets are replica groups: one primary holds the zone, the
other authoritatives serve transferred copies.  This example runs a
primary on loopback TCP, AXFRs the zone to a secondary, serves it,
bumps the serial on the primary, and shows the secondary's SOA-driven
refresh picking up the change.

Run:  python examples/secondary_sync.py
"""

from repro.dns import (
    NS,
    SOA,
    TXT,
    AuthoritativeServer,
    Name,
    RRType,
    SecondaryZone,
    TcpAuthoritativeServer,
    UdpAuthoritativeServer,
    Zone,
    query_udp,
)

ORIGIN = "example.nl."


def make_zone(serial: int, motd: str) -> Zone:
    zone = Zone(ORIGIN)
    zone.add(
        ORIGIN,
        RRType.SOA,
        SOA(
            Name.from_text(f"ns1.{ORIGIN}"),
            Name.from_text(f"hostmaster.{ORIGIN}"),
            serial, 7200, 3600, 1209600, 300,
        ),
    )
    zone.add(ORIGIN, RRType.NS, NS(Name.from_text(f"ns1.{ORIGIN}")))
    zone.add(ORIGIN, RRType.NS, NS(Name.from_text(f"ns2.{ORIGIN}")))
    zone.add(f"motd.{ORIGIN}", RRType.TXT, TXT.from_value(motd))
    return zone


def main() -> None:
    primary_engine = AuthoritativeServer("primary", [make_zone(1, "hello v1")])
    with TcpAuthoritativeServer(primary_engine) as primary:
        print(f"primary serving on {primary.address}")

        secondary = SecondaryZone(ORIGIN, primary.address)
        secondary.transfer()
        print(f"secondary transferred serial {secondary.serial}")

        replica_engine = AuthoritativeServer("secondary", [secondary.zone])
        with UdpAuthoritativeServer(replica_engine) as replica:
            answer = query_udp(replica.address, f"motd.{ORIGIN}", RRType.TXT)
            print(f"secondary answers: {answer.answers[0].rdata.value!r}")

            print("bumping the primary to serial 2 ...")
            primary_engine.remove_zone(Name.from_text(ORIGIN))
            primary_engine.add_zone(make_zone(2, "hello v2"))

            refreshed = secondary.refresh()
            print(f"secondary refresh pulled update: {refreshed}")
            replica_engine.remove_zone(Name.from_text(ORIGIN))
            replica_engine.add_zone(secondary.zone)
            answer = query_udp(replica.address, f"motd.{ORIGIN}", RRType.TXT)
            print(f"secondary now answers: {answer.answers[0].rdata.value!r}")

            unchanged = secondary.refresh()
            print(f"second refresh (same serial) transferred: {unchanged}")


if __name__ == "__main__":
    main()
