#!/usr/bin/env python3
"""Can burn-rate SLO alerts find an injected outage? — scored end to end.

The observability question behind §6: when one NS of a zone degrades,
which client-side signal notices, and how fast?  The testbed makes the
question answerable *exactly*, because the fault injector writes its
ground-truth timeline into the run:

1. run the treatment campaign — a two-NS zone (2C: FRA + SYD) under
   the bundled ``ns-outage`` scenario, ns1 dark for the middle third —
   and a control campaign with no faults, both with tracing on;
2. evaluate the same declarative SLO set over each run's query traces:
   fixed virtual-time windows, burn rate = consumption / objective,
   consecutive burning windows merged into alerts;
3. score the treatment alerts against the injected fault window:
   **detection latency** (alert start − fault start), **precision**
   (alerted intervals that overlap a real fault), **recall** (faults
   any alert caught);
4. the control run is the false-positive check — a healthy campaign
   must raise nothing.

The punchline matches the paper's account of resolver behaviour: the
retry machinery hides a dead NS from *availability* metrics (answer
rate stays ~100%), so the detecting signal is the per-NS query-share
skew — recursives abandoning the dead NS is visible a window after the
fault starts, long before SERVFAILs would be.

Run:  python examples/fault_detection_study.py [--probes N]
"""

import argparse

from repro.analysis import render_table
from repro.core import ExperimentConfig, TestbedExperiment
from repro.telemetry import (
    Note,
    Telemetry,
    default_slos,
    evaluate_slos,
    fault_windows_from_notes,
    render_slo_report,
)


def run_campaign(args, scenario):
    """One traced campaign; returns (query roots, ground-truth windows)."""
    config = ExperimentConfig.for_combination(
        "2C",
        num_probes=args.probes,
        interval_s=args.interval_s,
        duration_s=args.duration_s,
        seed=args.seed,
        scenario=scenario,
    )
    telemetry = Telemetry.enabled_bundle(profiling=False)
    experiment = TestbedExperiment(config, telemetry=telemetry)
    experiment.run()
    faults = []
    if experiment.fault_plan is not None:
        notes = [
            Note(name=name, data=data, at=at)
            for at, name, data in experiment.fault_plan.transitions()
        ]
        faults = fault_windows_from_notes(notes)
    return telemetry.tracer.traces(), faults


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probes", type=int, default=150)
    parser.add_argument("--interval-s", type=float, default=60.0)
    parser.add_argument("--duration-s", type=float, default=1800.0)
    parser.add_argument("--window-s", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    slos = default_slos(window_s=args.window_s)

    print("running treatment campaign (ns-outage) ...")
    roots, faults = run_campaign(args, scenario="ns-outage")
    treatment = evaluate_slos(roots, slos, faults=faults)

    print("running control campaign (no faults) ...")
    control_roots, _ = run_campaign(args, scenario=None)
    control = evaluate_slos(control_roots, slos)

    print()
    print(render_slo_report(treatment))
    print()

    rows = []
    for slo in slos:
        score = treatment.scores[slo.name]
        rows.append([
            slo.name,
            str(score.alerts),
            f"{score.detected}/{score.fault_windows}",
            (f"{score.mean_detection_latency_s:.0f}s"
             if score.mean_detection_latency_s is not None else "-"),
            f"{score.precision:.2f}" if score.precision is not None else "-",
            f"{score.recall:.2f}" if score.recall is not None else "-",
        ])
    print(render_table(
        ["SLO", "alerts", "detected", "latency", "precision", "recall"],
        rows,
        title="Detection scorecard (treatment vs. injected ground truth)",
    ))

    control_alerts = sum(len(a) for a in control.alerts.values())
    print()
    print(f"control campaign alerts: {control_alerts} (healthy run)")

    detectors = [
        slo.name for slo in slos
        if treatment.scores[slo.name].recall == 1.0
    ]
    print(f"SLOs that caught the outage: {', '.join(detectors) or 'none'}")

    # -- self-checks: the study's claims, enforced ------------------------
    assert len(faults) == 1, f"expected one injected window, got {faults}"
    # Some SLO must catch the outage, with perfect precision ...
    assert detectors, "no SLO detected the injected outage"
    best = min(
        (treatment.scores[name] for name in detectors),
        key=lambda s: s.mean_detection_latency_s,
    )
    assert best.precision == 1.0, best
    # ... within two windows of the fault starting.
    assert best.mean_detection_latency_s <= 2 * args.window_s, best
    # The retry machinery hides the outage from availability signals:
    # share skew sees what answer rate cannot.
    assert "ns-share-skew" in detectors
    # And a healthy campaign stays silent — no false alarms.
    assert control_alerts == 0, control.alerts
    print("\nall detection claims hold")


if __name__ == "__main__":
    main()
