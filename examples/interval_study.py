#!/usr/bin/env python3
"""Reproduce the paper's §4.4 query-frequency study (Figure 6).

Re-runs combination 2C (Frankfurt vs. Sydney) probing every 2, 5, 10,
15, 20, and 30 minutes, and prints the fraction of queries reaching
Frankfurt per continent — showing that recursive preference persists
well past the nominal 10/15-minute infrastructure-cache timeouts.

Run:  python examples/interval_study.py [--probes N]
"""

import argparse

from repro.analysis import analyze_interval_sweep, render_interval_sweep
from repro.core import FIGURE6_INTERVALS_MIN, run_combination
from repro.netsim import Continent


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probes", type=int, default=150)
    parser.add_argument("--seed", type=int, default=20170412)
    args = parser.parse_args()

    runs = {}
    for minutes in FIGURE6_INTERVALS_MIN:
        print(f"running 2C at a {minutes}-minute interval ...")
        # Longer intervals need a longer campaign to gather samples.
        duration = max(3600.0, minutes * 60.0 * 6)
        result = run_combination(
            "2C",
            num_probes=args.probes,
            interval_s=minutes * 60.0,
            duration_s=duration,
            seed=args.seed,
        )
        runs[float(minutes)] = result.observations

    sweep = analyze_interval_sweep(runs, "FRA")
    print()
    print(render_interval_sweep(sweep))
    print()
    persists = sweep.preference_persists(Continent.EU, threshold=0.55)
    print(
        "EU preference persists at 30-minute probing:"
        f" {'yes' if persists else 'no'} "
        "(the paper's surprising §4.4 finding — it outlives the BIND/Unbound"
        " cache timeouts)"
    )


if __name__ == "__main__":
    main()
