#!/usr/bin/env python3
"""Coverage gate for the failure-path packages.

Runs the tier-1 test suite with line coverage scoped to the packages
whose failure behaviour this repo's tests exist to pin down —
``repro.netsim`` and ``repro.resolvers`` — and fails if either package
drops below its committed floor.

Uses `coverage.py <https://coverage.readthedocs.io>`_ when it is
importable (CI installs it); otherwise falls back to a stdlib
``sys.settrace`` tracer so the gate also runs in environments where
nothing may be installed.  The fallback traces the main process only
and counts executable lines straight off the compiled code objects, so
its percentages differ slightly from coverage.py's statement analysis;
the floors carry enough margin for either tool.

Usage:  python scripts/coverage_gate.py [--out report.txt] [pytest args]
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import types
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: package name -> directory (or single module) whose .py files are gated.
GATED = {
    "repro.netsim": SRC / "repro" / "netsim",
    "repro.resolvers": SRC / "repro" / "resolvers",
    "repro.telemetry": SRC / "repro" / "telemetry",
    # Gated on its own, beyond the package floor: the ledger's numbers
    # are the per-event cost baseline the DES kernel is judged against,
    # so its counting/merge paths must stay pinned by tests.
    "repro.telemetry.costs": SRC / "repro" / "telemetry" / "costs.py",
    # The columnar data plane every campaign flows through: append,
    # merge, canonical sort, and the row view must stay pinned — a
    # silent column skew corrupts every export downstream.
    "repro.core.store": SRC / "repro" / "core" / "store.py",
    # The authoritative-side attack mitigation: slip/drop decisions
    # feed the adversarial-campaign determinism contract, so window
    # math and bucket accounting must stay pinned by tests.
    "repro.dns.rrl": SRC / "repro" / "dns" / "rrl.py",
}

#: committed line-coverage floors (percent).  Measured at the PR that
#: introduced the gate minus ~4 points of margin for tool drift; raise
#: them when new tests land, never lower them to make a PR pass.
FLOORS = {
    "repro.netsim": 90.0,  # 93.9% measured at the gate's introduction
    "repro.resolvers": 93.0,  # 97.3% measured at the gate's introduction
    "repro.telemetry": 90.0,  # 95.4% measured when the package was gated
    "repro.telemetry.costs": 90.0,  # 100% measured when the module landed
    "repro.core.store": 90.0,  # 98%+ measured when the store landed
    "repro.dns.rrl": 90.0,  # 100% measured when the edge tests landed
}


def gated_files() -> dict[str, list[Path]]:
    return {
        package: (
            [target] if target.is_file() else sorted(target.rglob("*.py"))
        )
        for package, target in GATED.items()
    }


def executable_lines(path: Path) -> set[int]:
    """Line numbers the interpreter can actually execute in ``path``."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack: list[types.CodeType] = [code]
    while stack:
        current = stack.pop()
        lines.update(
            line for _, _, line in current.co_lines() if line is not None
        )
        stack.extend(
            const
            for const in current.co_consts
            if isinstance(const, types.CodeType)
        )
    lines.discard(0)
    return lines


def run_pytest(pytest_args: list[str]) -> int:
    import pytest

    return pytest.main(pytest_args or ["-x", "-q", str(ROOT / "tests")])


def measure_with_coverage(pytest_args: list[str]):
    """Preferred path: coverage.py's statement analysis."""
    import coverage

    cov = coverage.Coverage(
        include=[
            str(target) if target.is_file() else f"{target}/*"
            for target in GATED.values()
        ],
        data_file=str(ROOT / ".coverage.gate"),
    )
    cov.start()
    try:
        exit_code = run_pytest(pytest_args)
    finally:
        cov.stop()
    results = {}
    for package, files in gated_files().items():
        statements = 0
        covered = 0
        for path in files:
            _, file_statements, _, missing, _ = cov.analysis2(str(path))
            statements += len(file_statements)
            covered += len(file_statements) - len(missing)
        results[package] = (covered, statements)
    cov.erase()
    return exit_code, results, "coverage.py"


def measure_with_settrace(pytest_args: list[str]):
    """Stdlib fallback: a scoped line tracer over the main process."""
    prefixes = tuple(str(directory) for directory in GATED.values())
    hits: dict[str, set[int]] = {}

    def local_tracer(frame, event, arg):
        if event == "line":
            hits.setdefault(frame.f_code.co_filename, set()).add(
                frame.f_lineno
            )
        return local_tracer

    def global_tracer(frame, event, arg):
        # Called once per function call: reject foreign files fast so
        # the suite stays runnable under the tracer.
        if frame.f_code.co_filename.startswith(prefixes):
            return local_tracer(frame, event, arg)
        return None

    threading.settrace(global_tracer)
    sys.settrace(global_tracer)
    try:
        exit_code = run_pytest(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)

    results = {}
    for package, files in gated_files().items():
        statements = 0
        covered = 0
        for path in files:
            lines = executable_lines(path)
            statements += len(lines)
            covered += len(lines & hits.get(str(path), set()))
        results[package] = (covered, statements)
    return exit_code, results, "sys.settrace"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", help="also write the report to this file")
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="arguments forwarded to pytest (default: -x -q tests)",
    )
    args = parser.parse_args()

    sys.path.insert(0, str(SRC))
    # The suite shells out to the example scripts; they must find the
    # package the same way this process does.
    existing = os.environ.get("PYTHONPATH")
    os.environ["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{existing}" if existing else str(SRC)
    )
    try:
        import coverage  # noqa: F401

        exit_code, results, tool = measure_with_coverage(args.pytest_args)
    except ImportError:
        exit_code, results, tool = measure_with_settrace(args.pytest_args)

    lines = [f"line coverage ({tool}), floors in parentheses:"]
    failed = []
    for package, (covered, statements) in sorted(results.items()):
        percent = 100.0 * covered / statements if statements else 0.0
        floor = FLOORS[package]
        verdict = "ok" if percent >= floor else "BELOW FLOOR"
        lines.append(
            f"  {package:<18} {percent:6.2f}%  ({floor:.0f}% floor, "
            f"{covered}/{statements} lines) {verdict}"
        )
        if percent < floor:
            failed.append(package)
    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    if args.out:
        Path(args.out).write_text(report)

    if exit_code != 0:
        print(f"test suite failed (exit {exit_code}); coverage not gated")
        return exit_code
    if failed:
        print(f"coverage below committed floor for: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
